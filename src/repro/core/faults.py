"""Deterministic fault injection for chaos testing the distributed layers.

The paper's pipeline assumes every module always succeeds; the sharded,
fleet-served reproduction cannot.  This module makes failure a
first-class, *reproducible* input: a seeded :class:`FaultPlan` arms
named **sites** threaded through the I/O boundaries —

* ``store.load`` / ``store.save`` — :class:`~repro.core.snapshot.SkeletonStore`
  reads and writes,
* ``peer.fetch`` — :class:`~repro.core.snapshot_net.HTTPSnapshotPeer`,
* ``shard<N>.collect`` / ``shard<N>.rank`` —
  :class:`~repro.core.sharding.ShardExecutor`'s two scatter phases,
* ``http.request`` — the :class:`~repro.serving.http.HTTPServingEndpoint`
  bridge

— and a :class:`FaultInjector` decides, at every call, whether to fire
one of four fault kinds: a raised :class:`~repro.errors.InjectedFaultError`,
an injected delay (to trip deadlines), truncated/corrupted bytes, or a
hard hang.

**Determinism is the contract.**  Whether call *n* at site *s* fires is
a pure function of ``(site, call-count, seed)``: the decision hashes
``seed | rule-index | site | n`` (BLAKE2b) into ``[0, 1)`` and compares
against the rule's rate — no RNG state, no wall clock, no thread
identity.  Two runs with the same plan and the same per-site call
sequences fire the byte-identical schedule; the chaos difftest asserts
exactly that via :meth:`FaultInjector.schedule`.

Sites are matched with :func:`fnmatch.fnmatchcase` patterns, so one rule
can arm a family (``"shard*.collect"``) or a single member
(``"shard0.rank"``).  The first matching rule in plan order decides.

Components take an optional ``fault_injector`` and call
:meth:`FaultInjector.act` at their site; a ``None`` injector costs one
attribute check on the hot path.  ``act`` *performs* error/delay/hang
faults itself and returns the :class:`FaultEvent` for ``corrupt`` faults
so the caller can route the payload through :meth:`FaultInjector.mangle`
(byte corruption is deterministic too: truncate to half and flip a
hash-chosen byte).

Hangs block on an internal event capped by ``hang_timeout`` — call
:meth:`FaultInjector.release_hangs` in test teardown so no thread leaks
past the scenario.  :meth:`FaultInjector.disable` /
:meth:`~FaultInjector.enable` gate firing without touching call
counters, which is how the recovery benchmark "heals" the fault domain
mid-run.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from hashlib import blake2b
from typing import Callable, Optional, Sequence

from repro.errors import InjectedFaultError

#: The four fault kinds.
FAULT_ERROR = "error"  #: raise :class:`InjectedFaultError`
FAULT_DELAY = "delay"  #: sleep ``rule.delay`` seconds
FAULT_CORRUPT = "corrupt"  #: caller mangles the payload bytes
FAULT_HANG = "hang"  #: block until ``release_hangs`` (or ``hang_timeout``)

FAULT_KINDS = (FAULT_ERROR, FAULT_DELAY, FAULT_CORRUPT, FAULT_HANG)


@dataclass(frozen=True)
class FaultRule:
    """One arming of a site (pattern) with a fault kind.

    ``rate`` fires probabilistically-but-deterministically (see the
    module docstring); ``at_calls`` fires on exactly those 1-based call
    numbers instead (takes precedence when non-empty).  ``max_fires``
    caps total firings of this rule — note the cap counts in *firing
    order*, which under concurrent callers is scheduling-dependent;
    determinism tests use serial execution or uncapped rules.
    """

    site: str
    kind: str
    rate: float = 1.0
    at_calls: tuple[int, ...] = ()
    delay: float = 0.05
    max_fires: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{FAULT_KINDS}"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {self.rate}")


@dataclass(frozen=True)
class FaultPlan:
    """A seed plus an ordered tuple of rules — the whole chaos scenario.

    Immutable and cheap to share: two injectors built from the same plan
    produce the same decisions for the same call sequences.
    """

    seed: int
    rules: tuple[FaultRule, ...] = ()

    @classmethod
    def single(cls, seed: int, site: str, kind: str, **kwargs) -> "FaultPlan":
        """Convenience: a plan arming one site with one rule."""
        return cls(seed=seed, rules=(FaultRule(site, kind, **kwargs),))


@dataclass(frozen=True)
class FaultEvent:
    """One fired fault — the unit of the reproducible schedule."""

    site: str
    call: int  # 1-based per-site call number
    kind: str
    rule_index: int

    def as_tuple(self) -> tuple[str, int, str, int]:
        return (self.site, self.call, self.kind, self.rule_index)


def _hash01(seed: int, rule_index: int, site: str, call: int) -> float:
    """A uniform ``[0, 1)`` draw that is a pure function of its inputs."""
    digest = blake2b(
        f"{seed}|{rule_index}|{site}|{call}".encode("utf-8"),
        digest_size=8,
    ).digest()
    return int.from_bytes(digest, "big") / float(1 << 64)


class FaultInjector:
    """Executes a :class:`FaultPlan` against named call sites.

    Thread-safe: per-site call counters and the fired-event ledger are
    lock-guarded, so concurrent scatter threads each get a distinct call
    number and the canonical schedule is stable regardless of
    interleaving.
    """

    def __init__(
        self,
        plan: FaultPlan,
        sleep: Callable[[float], None] = time.sleep,
        hang_timeout: float = 30.0,
    ):
        self.plan = plan
        self.hang_timeout = hang_timeout
        self._sleep = sleep
        self._lock = threading.Lock()
        self._calls: dict[str, int] = {}
        self._fired: list[FaultEvent] = []
        self._rule_fires: dict[int, int] = {}
        self._hang_release = threading.Event()
        self._enabled = True

    # -- lifecycle -------------------------------------------------------------

    def enable(self) -> None:
        with self._lock:
            self._enabled = True

    def disable(self) -> None:
        """Stop firing (counters keep advancing) — the 'faults cleared'
        half of a recovery scenario."""
        with self._lock:
            self._enabled = False

    @property
    def enabled(self) -> bool:
        with self._lock:
            return self._enabled

    def release_hangs(self) -> None:
        """Unblock every thread parked in a hang fault — call in teardown."""
        self._hang_release.set()

    # -- the decision ----------------------------------------------------------

    def _decide(self, site: str) -> Optional[FaultEvent]:
        with self._lock:
            call = self._calls.get(site, 0) + 1
            self._calls[site] = call
            if not self._enabled:
                return None
            for index, rule in enumerate(self.plan.rules):
                if not fnmatchcase(site, rule.site):
                    continue
                if rule.at_calls:
                    fire = call in rule.at_calls
                else:
                    fire = (
                        _hash01(self.plan.seed, index, site, call) < rule.rate
                    )
                if not fire:
                    # First matching rule owns the site for this call.
                    return None
                if rule.max_fires is not None:
                    fired = self._rule_fires.get(index, 0)
                    if fired >= rule.max_fires:
                        return None
                    self._rule_fires[index] = fired + 1
                event = FaultEvent(
                    site=site, call=call, kind=rule.kind, rule_index=index
                )
                self._fired.append(event)
                return event
            return None

    def act(self, site: str) -> Optional[FaultEvent]:
        """Count a call at ``site`` and perform any armed fault.

        * ``error`` — raises :class:`InjectedFaultError` here.
        * ``delay`` — sleeps the rule's ``delay`` here.
        * ``hang``  — blocks until :meth:`release_hangs` (capped by
          ``hang_timeout``) here.
        * ``corrupt`` — returns the event; the caller applies
          :meth:`mangle` to the payload bytes.

        Returns the fired event (or ``None``) so call sites can branch
        on ``corrupt`` without re-deciding.
        """
        event = self._decide(site)
        if event is None:
            return None
        if event.kind == FAULT_ERROR:
            raise InjectedFaultError(site, event.call, FAULT_ERROR)
        if event.kind == FAULT_DELAY:
            self._sleep(self.plan.rules[event.rule_index].delay)
        elif event.kind == FAULT_HANG:
            self._hang_release.wait(self.hang_timeout)
        return event

    def mangle(self, event: FaultEvent, payload: bytes) -> bytes:
        """Deterministically corrupt ``payload`` for a ``corrupt`` event.

        Truncates to half length and flips one hash-chosen byte — enough
        to defeat any structural validation, and a pure function of
        (plan seed, event, payload length) so two runs corrupt
        identically.
        """
        digest = blake2b(
            f"{self.plan.seed}|{event.site}|{event.call}".encode("utf-8"),
            digest_size=8,
        ).digest()
        truncated = bytearray(payload[: max(1, len(payload) // 2)])
        position = int.from_bytes(digest, "big") % len(truncated)
        truncated[position] ^= 0xFF
        return bytes(truncated)

    # -- the reproducible record ----------------------------------------------

    def call_count(self, site: str) -> int:
        with self._lock:
            return self._calls.get(site, 0)

    def schedule(self) -> tuple[tuple[str, int, str, int], ...]:
        """Every fired fault, canonically ordered by (site, call).

        The ordering is independent of thread interleaving, so equal
        plans + equal per-site call sequences ⇒ byte-identical
        schedules — the chaos difftest's determinism assertion.
        """
        with self._lock:
            return tuple(
                sorted(
                    (event.as_tuple() for event in self._fired),
                    key=lambda item: (item[0], item[1]),
                )
            )

    def schedule_digest(self) -> str:
        """A stable hex digest of :meth:`schedule` for cheap comparison."""
        digest = blake2b(digest_size=16)
        for site, call, kind, rule_index in self.schedule():
            digest.update(f"{site}|{call}|{kind}|{rule_index};".encode())
        return digest.hexdigest()
