"""Query rewriting: evaluate the original view over PDTs.

The paper's QPT Generation Module "rewrites the original query to go over
PDTs instead of the base data" (Section 3.1).  Because the evaluator
resolves ``fn:doc`` through a pluggable resolver, the rewrite is realized
as a resolver that maps each document name to its PDT root — the query
text/AST is untouched, and the evaluator is the stock one (the paper's
"no changes to the XML query evaluator" requirement).
"""

from __future__ import annotations

from typing import Callable, Mapping

from repro.core.pdt import PDTResult
from repro.errors import DocumentNotFoundError
from repro.xmlmodel.node import XMLNode


def make_pdt_resolver(pdts: Mapping[str, PDTResult]) -> Callable[[str], XMLNode]:
    """A document resolver that serves PDT roots instead of base documents."""

    def resolve(name: str) -> XMLNode:
        pdt = pdts.get(name)
        if pdt is None:
            raise DocumentNotFoundError(name)
        return pdt.root

    return resolve


def make_base_resolver(database) -> Callable[[str], XMLNode]:
    """The ordinary resolver over base documents (Baseline path)."""

    def resolve(name: str) -> XMLNode:
        return database.get(name).root

    return resolve
