"""Top-k result materialization (paper Section 4.2.2.2, final step).

Only after the top-k results are identified are their contents fetched
from document storage: every pruned node in a winning result is expanded
into the full base subtree it stands for.  This is the single point in the
Efficient pipeline that touches the document store.
"""

from __future__ import annotations

from repro.errors import StorageError
from repro.storage.database import XMLDatabase
from repro.xmlmodel.node import XMLNode


def materialize_result(node: XMLNode, database: XMLDatabase) -> XMLNode:
    """Expand a pruned view result into a fully materialized tree.

    Constructed nodes are copied; pruned nodes are replaced by the stored
    subtree they reference.  Nodes that are neither (already materialized
    base elements, as in Baseline results) are deep-copied as-is.
    """
    anno = node.anno
    if anno is not None and anno.pruned:
        if anno.doc is None or anno.dewey is None:
            raise StorageError("pruned node lacks document/dewey annotations")
        return database.get(anno.doc).store.materialize_subtree(anno.dewey)
    copy = XMLNode(node.tag, node.text)
    for child in node.children:
        copy.append(materialize_result(child, database))
    return copy
