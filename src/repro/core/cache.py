"""A two-tier LRU cache for the query-serving pipeline.

Repeated keyword queries are the common case a serving system sees, yet
every search used to re-issue the full PrepareLists probe set and rebuild
every PDT from scratch.  Both intermediates are pure functions of stable
inputs, so they cache cleanly:

* **Tier 1 — prepared lists**: keyed by ``(document, QPT, keywords)``.
  A hit skips every path-index and inverted-index probe for that
  document (``probe_count`` stays untouched).  QPTs participate by
  identity — a view built by ``define_view`` keeps its QPT objects for
  life, and the cache key holds a strong reference so ids cannot be
  recycled.
* **Tier 2 — PDTs**: keyed by ``(view, document, keywords)``.  A hit
  skips PDT generation entirely and reuses the pruned tree.  This is
  safe because nothing downstream mutates a PDT: the evaluator
  references PDT nodes without touching their parent pointers, scoring
  only reads annotations, and materialization copies.

Both tiers are invalidated per document through the hooks
:class:`repro.storage.database.XMLDatabase` fires on ``load_document`` /
``drop_document``, and per view when a view name is redefined.  The idea
— keep per-view intermediate structures alive across queries — follows
the view-maintenance line of work (Chebotko & Fu's reconstruction-view
selection; Böttcher et al.'s DAG-compressed search structures).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Hashable, Optional


@dataclass
class CacheStats:
    """Hit/miss/eviction counters for one cache tier."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "hit_rate": self.hit_rate,
        }


class LRUCache:
    """A size-bounded mapping with least-recently-used eviction.

    ``capacity <= 0`` disables the cache (every ``get`` misses, ``put`` is
    a no-op), which lets callers turn a tier off without branching.
    """

    def __init__(self, capacity: int):
        self.capacity = capacity
        self._data: OrderedDict[Hashable, Any] = OrderedDict()
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data

    def get(self, key: Hashable) -> Optional[Any]:
        """The cached value (refreshed as most recent), or ``None``."""
        if key not in self._data:
            self.stats.misses += 1
            return None
        self._data.move_to_end(key)
        self.stats.hits += 1
        return self._data[key]

    def put(self, key: Hashable, value: Any) -> None:
        if self.capacity <= 0:
            return
        if key in self._data:
            self._data.move_to_end(key)
        self._data[key] = value
        while len(self._data) > self.capacity:
            self._data.popitem(last=False)
            self.stats.evictions += 1

    def invalidate_where(self, predicate: Callable[[Hashable], bool]) -> int:
        """Drop every entry whose key satisfies ``predicate``."""
        doomed = [key for key in self._data if predicate(key)]
        for key in doomed:
            del self._data[key]
        self.stats.invalidations += len(doomed)
        return len(doomed)

    def clear(self) -> int:
        count = len(self._data)
        self._data.clear()
        self.stats.invalidations += count
        return count


@dataclass
class QueryCache:
    """The engine's two tiers: prepared lists and PDTs.

    Key layouts (relied on by the invalidation helpers):

    * prepared: ``(doc_name, qpt, keywords)``
    * pdt:      ``(view_name, doc_name, keywords)``
    """

    prepared_capacity: int = 256
    pdt_capacity: int = 128
    prepared: LRUCache = field(init=False)
    pdts: LRUCache = field(init=False)

    def __post_init__(self) -> None:
        self.prepared = LRUCache(self.prepared_capacity)
        self.pdts = LRUCache(self.pdt_capacity)

    # -- keys ---------------------------------------------------------------

    @staticmethod
    def prepared_key(
        doc_name: str, qpt: object, keywords: tuple[str, ...]
    ) -> tuple:
        return (doc_name, qpt, keywords)

    @staticmethod
    def pdt_key(
        view_name: str, doc_name: str, keywords: tuple[str, ...]
    ) -> tuple:
        return (view_name, doc_name, keywords)

    # -- invalidation --------------------------------------------------------

    def invalidate_document(self, doc_name: str) -> int:
        """Drop all entries derived from ``doc_name`` (both tiers)."""
        dropped = self.prepared.invalidate_where(lambda k: k[0] == doc_name)
        dropped += self.pdts.invalidate_where(lambda k: k[1] == doc_name)
        return dropped

    def invalidate_view(self, view_name: str) -> int:
        """Drop the PDTs of a (re)defined view; prepared lists survive."""
        return self.pdts.invalidate_where(lambda k: k[0] == view_name)

    def clear(self) -> int:
        return self.prepared.clear() + self.pdts.clear()

    # -- diagnostics ---------------------------------------------------------

    def stats(self) -> dict[str, dict[str, float]]:
        return {
            "prepared": self.prepared.stats.as_dict(),
            "pdt": self.pdts.stats.as_dict(),
        }
