"""A sharded, three-tier LRU cache for the query-serving pipeline.

Repeated keyword queries are the common case a serving system sees, yet
every search used to re-issue the full PrepareLists probe set and rebuild
every PDT from scratch.  The intermediates are pure functions of stable
inputs, so they cache cleanly — and they split along the keyword axis:

* **Tier 1 — prepared lists**: keyed by ``(document, QPT content hash,
  keywords)``.  A hit skips every path-index and inverted-index probe
  for that document (``probe_count`` stays untouched).  QPTs
  participate by *content hash* (:attr:`repro.core.qpt.QPT.content_hash`
  — structure + axes + annotations), never by object identity: the keys
  are stable across processes and across redefinitions that leave the
  structure unchanged.
* **Tier 2 — PDT skeletons**: keyed by ``(view, document)`` — no
  keywords.  The skeleton is the keyword-*independent* structural part
  of the PDT (view-relevant paths, Dewey ids, the resolved structural
  joins); see :class:`repro.core.pdt.PDTSkeleton`.  A hit means a query
  with a *never-seen* keyword set skips all path-index probes and the
  whole merge pass; only per-keyword inverted-list probes and the cheap
  annotation pass remain.
* **Tier 3 — PDTs**: keyed by ``(view, document, keywords)``.  A hit
  skips PDT work entirely and reuses the pruned tree.  This is safe
  because nothing downstream mutates a PDT: the evaluator references
  PDT nodes without touching their parent pointers, scoring only reads
  annotations, and materialization copies.
* **Tier 4 — evaluated views**: keyed by ``(view, view expression,
  per-document generations)`` — no keywords.  PDT trees are
  keyword-independent
  (per-query tfs live in flat arrays *outside* the tree, resolved by
  scoring through content-node slots), so the evaluator's output over
  them — the view's result node list — is keyword-independent too.  A
  hit means a query with a never-seen keyword set skips the whole
  XQuery evaluation: all that runs is the per-keyword posting sweep,
  scoring over the cached result nodes, and top-k.  Safe for the same
  reason as tier 3: evaluation attaches result nodes by reference and
  nothing downstream writes into them.

Every tier is a :class:`ShardedLRUCache`: entries are hash-partitioned
by their ``(doc, view)`` coordinates across independent shards, each
with its own lock and LRU chain, so concurrent workers contend only
when they touch the same shard and capacity scales with the shard
count.  Statistics are kept per shard and aggregated on demand.

All tiers are invalidated per document through the hooks
:class:`repro.storage.database.XMLDatabase` fires on ``load_document`` /
``drop_document``, and per view (skeletons and PDTs) when a view name
is redefined.  The idea — keep per-view intermediate structures alive
across queries, sharing the structure/data split — follows the
view-maintenance and DAG-compression line of work (Chebotko & Fu's
reconstruction-view selection; Böttcher et al.'s DAG-compressed search
structures).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Hashable, Iterator, Optional

from repro.core.routing import ShardRouter


@dataclass
class CacheStats:
    """Hit/miss/eviction counters for one cache tier (or one shard).

    ``memory_bytes`` is a *gauge* (the resident-byte estimate at
    snapshot time), not a monotone counter — ``add`` still sums it,
    because aggregating shard gauges yields the tier gauge.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0
    memory_bytes: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def add(self, other: "CacheStats") -> None:
        self.hits += other.hits
        self.misses += other.misses
        self.evictions += other.evictions
        self.invalidations += other.invalidations
        self.memory_bytes += other.memory_bytes

    def as_dict(self) -> dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "memory_bytes": self.memory_bytes,
            "hit_rate": self.hit_rate,
        }


def default_sizer(value: Any) -> int:
    """Bytes a cached value reports for budget accounting.

    Values expose a ``memory_bytes`` attribute (skeletons — compressed
    or eager — and mapped snapshots all do); anything without one is
    accounted as free, so byte budgets constrain exactly the tiers
    whose values opted into accounting.
    """
    size = getattr(value, "memory_bytes", 0)
    return size if isinstance(size, int) else 0


def close_value(value: Any) -> None:
    """The default on-evict hook: release a value that holds resources.

    Values that own something beyond heap memory expose ``close()`` —
    :class:`repro.core.snapshot.MappedSkeleton` holds an open mmap whose
    pages and file handle survive until garbage collection otherwise, a
    real leak on a long-running server whose byte budget keeps churning
    the skeleton tier.  Everything else (prepared lists, PDTs, result
    tuples) has no ``close`` and is left to the collector.
    """
    close = getattr(value, "close", None)
    if callable(close):
        close()


class LRUCache:
    """A size-bounded mapping with least-recently-used eviction.

    ``capacity <= 0`` disables the cache (every ``get`` misses, ``put`` is
    a no-op), which lets callers turn a tier off without branching.  Not
    thread-safe on its own — :class:`ShardedLRUCache` serializes access
    per shard.

    Besides the entry-count bound, an optional ``byte_budget`` bounds
    the *bytes* resident in the cache: each value is measured once at
    insertion by ``sizer`` (default: its ``memory_bytes`` attribute)
    and LRU entries are evicted while the running total exceeds the
    budget.  A single value larger than the whole budget is evicted
    immediately — a hard budget, not advisory.  The running total is
    exposed as :attr:`memory_bytes`.

    When the cache drops a value it *owns* — LRU/byte-budget eviction,
    replacement by a different value under the same key, or
    displacement by a :meth:`rekey_where` overwrite — it runs
    ``on_evict`` (default :func:`close_value`) so resource-holding
    values release deterministically instead of leaking until garbage
    collection.  *Invalidation* paths (``invalidate_where``/``clear``)
    deliberately do **not** close: they drop dead-keyed entries that a
    concurrent in-flight query may legitimately still be reading (a
    generation bump lands mid-search), whereas eviction only removes
    the least-recently-used tail the cache alone is keeping alive.
    Pass ``on_evict=None`` to disable the hook.
    """

    def __init__(
        self,
        capacity: int,
        byte_budget: Optional[int] = None,
        sizer: Optional[Callable[[Any], int]] = None,
        on_evict: Optional[Callable[[Any], None]] = close_value,
    ):
        self.capacity = capacity
        self.byte_budget = byte_budget
        self._sizer = sizer or default_sizer
        self._on_evict = on_evict
        self._data: OrderedDict[Hashable, Any] = OrderedDict()
        self._sizes: dict[Hashable, int] = {}
        self.memory_bytes = 0
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data

    def get(self, key: Hashable) -> Optional[Any]:
        """The cached value (refreshed as most recent), or ``None``."""
        if key not in self._data:
            self.stats.misses += 1
            return None
        self._data.move_to_end(key)
        self.stats.hits += 1
        return self._data[key]

    def _forget_size(self, key: Hashable) -> None:
        self.memory_bytes -= self._sizes.pop(key, 0)

    def _release(self, value: Any) -> None:
        """Run the on-evict hook on a value the cache just dropped."""
        if self._on_evict is not None:
            self._on_evict(value)

    def put(self, key: Hashable, value: Any) -> None:
        if self.capacity <= 0:
            return
        if key in self._data:
            replaced = self._data[key]
            self._data.move_to_end(key)
            self._forget_size(key)
            if replaced is not value:
                # Entry replacement drops the old value just as finally
                # as eviction does — same release discipline (the old
                # mmap handle used to leak here until GC).
                self._release(replaced)
        self._data[key] = value
        size = self._sizer(value)
        self._sizes[key] = size
        self.memory_bytes += size
        budget = self.byte_budget
        data = self._data
        while len(data) > self.capacity or (
            budget is not None and self.memory_bytes > budget and data
        ):
            evicted_key, evicted_value = data.popitem(last=False)
            self._forget_size(evicted_key)
            self.stats.evictions += 1
            if evicted_value is not value:
                # An over-budget value can evict *itself* on insertion;
                # the caller still holds (and is about to use) it, so
                # only drop it — releasing is for values whose last
                # reference was the cache's.
                self._release(evicted_value)

    def invalidate_where(self, predicate: Callable[[Hashable], bool]) -> int:
        """Drop every entry whose key satisfies ``predicate``."""
        doomed = [key for key in self._data if predicate(key)]
        for key in doomed:
            del self._data[key]
            self._forget_size(key)
        self.stats.invalidations += len(doomed)
        return len(doomed)

    def rekey_where(
        self,
        predicate: Callable[[Hashable], Hashable],
        transform: Callable[[Hashable], Hashable],
    ) -> list[tuple[Hashable, Any]]:
        """Move matching entries to ``transform(key)`` and return them.

        The delta-maintenance migration primitive: a surviving entry is
        re-addressed under its new coordinates (e.g. a fresh document
        generation) instead of being dropped and rebuilt.  Moved entries
        become most-recently-used; returns ``(new_key, value)`` pairs so
        the caller can patch the values in place afterwards.  Byte
        accounting follows the entry (the value is not re-measured).
        """
        moved: list[tuple[Hashable, Any]] = []
        for key in [k for k in self._data if predicate(k)]:
            value = self._data.pop(key)
            size = self._sizes.pop(key, 0)
            new_key = transform(key)
            if new_key in self._sizes:  # overwrite: drop the old accounting
                self._forget_size(new_key)
                displaced = self._data.get(new_key)
                if displaced is not None and displaced is not value:
                    self._release(displaced)
            self._data[new_key] = value
            self._sizes[new_key] = size
            moved.append((new_key, value))
        return moved

    def clear(self) -> int:
        count = len(self._data)
        self._data.clear()
        self._sizes.clear()
        self.memory_bytes = 0
        self.stats.invalidations += count
        return count


class ShardedLRUCache:
    """Hash-partitioned LRU: independent shards, each with its own lock.

    ``shard_key(key)`` extracts the partition coordinates (for the query
    tiers: the ``(doc, view)`` part of the key, *not* the keywords, so
    all entries of one view/document land in one shard and document
    invalidation touches a predictable place).  ``capacity`` is the
    total across shards; each shard gets an equal slice, so eviction
    pressure is per-partition — one hot view cannot evict the world.

    Thread-safe: every mapping operation takes only its shard's lock;
    ``invalidate_where`` and ``clear`` visit the shards one at a time
    and never hold two locks at once.  Statistics and size snapshots
    (``shard_stats``, ``stats``, ``stats_dict``, ``shard_sizes``,
    ``__len__``) instead hold *every* shard lock for the duration of the
    copy, so the aggregate they report corresponds to one instant of the
    cache's history — counters from different shards are never mixed
    across concurrent updates.  There is still no lock-ordering hazard:
    snapshots are the only path that holds more than one lock, and they
    always acquire in fixed shard order.
    """

    @staticmethod
    def _distribute(total: int, parts: int) -> list[int]:
        """Split ``total`` across ``parts`` without exceeding it.

        The first ``total % parts`` shards take one extra slot, so the
        per-shard slices sum to exactly ``total``.  (The previous ceil
        division handed *every* shard the rounded-up slice, letting the
        aggregate overshoot the configured bound by up to
        ``parts - 1``.)  Note the corollary: with ``total < parts``
        some shards get zero slots — the configured capacity is the
        contract, not a per-shard minimum.
        """
        base, remainder = divmod(total, parts)
        return [
            base + (1 if index < remainder else 0) for index in range(parts)
        ]

    def __init__(
        self,
        capacity: int,
        shards: int = 8,
        shard_key: Optional[Callable[[Hashable], Hashable]] = None,
        router: Optional[ShardRouter] = None,
        byte_budget: Optional[int] = None,
        sizer: Optional[Callable[[Any], int]] = None,
        on_evict: Optional[Callable[[Any], None]] = close_value,
    ):
        self.capacity = capacity
        self.byte_budget = byte_budget
        self.shard_count = max(1, shards)
        if router is not None and router.shard_count != self.shard_count:
            raise ValueError(
                f"router routes onto {router.shard_count} shards but the "
                f"cache has {self.shard_count}"
            )
        #: The shared :class:`~repro.core.routing.ShardRouter` — stable
        #: (no ``PYTHONHASHSEED`` dependence) and shareable with the
        #: serving lanes and the corpus shard plan, so every layer that
        #: partitions by ``(view, doc)`` agrees on placement.
        self.router = router or ShardRouter(self.shard_count)
        capacities = self._distribute(max(capacity, 0), self.shard_count)
        if byte_budget is None:
            budgets: list[Optional[int]] = [None] * self.shard_count
        else:
            budgets = list(
                self._distribute(max(byte_budget, 0), self.shard_count)
            )
        self._shards = [
            LRUCache(capacities[index], budgets[index], sizer, on_evict)
            for index in range(self.shard_count)
        ]
        self._locks = [threading.Lock() for _ in range(self.shard_count)]
        self._shard_key = shard_key or (lambda key: key)

    # -- partitioning --------------------------------------------------------

    def shard_index(self, key: Hashable) -> int:
        return self.router.index(self._shard_key(key))

    @contextmanager
    def _hold_all_locks(self) -> Iterator[None]:
        """Acquire every shard lock, in fixed shard order.

        Deadlock-free: all other code paths hold at most one shard lock
        at a time, and every multi-lock path comes through here with the
        same acquisition order.
        """
        acquired: list[threading.Lock] = []
        try:
            for lock in self._locks:
                lock.acquire()
                acquired.append(lock)
            yield
        finally:
            for lock in reversed(acquired):
                lock.release()

    # -- mapping operations --------------------------------------------------

    def __len__(self) -> int:
        with self._hold_all_locks():
            return sum(len(shard) for shard in self._shards)

    def __contains__(self, key: Hashable) -> bool:
        index = self.shard_index(key)
        with self._locks[index]:
            return key in self._shards[index]

    def get(self, key: Hashable) -> Optional[Any]:
        index = self.shard_index(key)
        with self._locks[index]:
            return self._shards[index].get(key)

    def put(self, key: Hashable, value: Any) -> None:
        index = self.shard_index(key)
        with self._locks[index]:
            self._shards[index].put(key, value)

    def invalidate_where(self, predicate: Callable[[Hashable], bool]) -> int:
        dropped = 0
        for shard, lock in zip(self._shards, self._locks):
            with lock:
                dropped += shard.invalidate_where(predicate)
        return dropped

    def rekey_where(
        self,
        predicate: Callable[[Hashable], Hashable],
        transform: Callable[[Hashable], Hashable],
    ) -> list[tuple[Hashable, Any]]:
        """Per-shard :meth:`LRUCache.rekey_where` (one lock at a time).

        ``transform`` must preserve the shard coordinates (for the query
        tiers: the view/document prefix the shard key reads) — the entry
        is reinserted into the shard it was found in.  Generation
        rewrites satisfy this by construction: generations never
        participate in shard selection.
        """
        moved: list[tuple[Hashable, Any]] = []
        for shard, lock in zip(self._shards, self._locks):
            with lock:
                moved.extend(shard.rekey_where(predicate, transform))
        return moved

    def clear(self) -> int:
        dropped = 0
        for shard, lock in zip(self._shards, self._locks):
            with lock:
                dropped += shard.clear()
        return dropped

    # -- diagnostics ---------------------------------------------------------

    @property
    def stats(self) -> CacheStats:
        """Aggregate counters across all shards (a consistent snapshot)."""
        total = CacheStats()
        for snapshot in self.shard_stats():
            total.add(snapshot)
        return total

    def shard_stats(self) -> list[CacheStats]:
        """A per-shard snapshot of the counters, in shard order.

        All shard locks are held while copying, so the snapshot is
        *consistent*: it reflects one instant of the cache's history.
        Visiting shards one at a time instead would let a counter bump
        land between the copies and produce an aggregate state the cache
        was never actually in (e.g. an operation sequenced strictly
        before another shard's already-snapshotted traffic going
        missing from the totals).
        """
        with self._hold_all_locks():
            return [
                CacheStats(
                    hits=shard.stats.hits,
                    misses=shard.stats.misses,
                    evictions=shard.stats.evictions,
                    invalidations=shard.stats.invalidations,
                    memory_bytes=shard.memory_bytes,
                )
                for shard in self._shards
            ]

    def shard_sizes(self) -> list[int]:
        with self._hold_all_locks():
            return [len(shard) for shard in self._shards]

    @property
    def memory_bytes(self) -> int:
        """Accounted bytes resident across all shards (one instant)."""
        with self._hold_all_locks():
            return sum(shard.memory_bytes for shard in self._shards)

    def stats_dict(self) -> dict[str, Any]:
        """Aggregate counters plus the per-shard breakdown.

        Built from one consistent ``shard_stats`` snapshot, so the
        aggregate equals the shard sum *and* both describe the same
        instant even while other threads keep counting.
        """
        shards = self.shard_stats()
        total = CacheStats()
        for snapshot in shards:
            total.add(snapshot)
        combined = total.as_dict()
        combined["shards"] = [s.as_dict() for s in shards]
        return combined


@dataclass
class QueryCache:
    """The engine's three tiers: prepared lists, PDT skeletons, PDTs.

    Key layouts (positions relied on by the invalidation helpers):

    * prepared:  ``(doc_name, generation, qpt_hash, keywords)`` — sharded
      by ``doc_name``
    * skeleton:  ``(view_name, doc_name, generation, qpt_hash)`` —
      sharded by ``(view_name, doc_name)``
    * pdt:       ``(view_name, doc_name, generation, qpt_hash,
      keywords)`` — sharded by ``(view_name, doc_name)``
    * evaluated: ``(view_name, view_expr, ((doc_name, generation,
      qpt_hash), ...))`` — sharded by ``view_name`` (one entry spans
      every document the view reads, so it cannot partition finer);
      ``view_expr`` participates by *identity*: the cached result nodes
      depend on the whole expression (not just the QPT) and are
      process-local anyway, and the identity keeps a put racing a view
      redefinition unreachable forever

    Keywords never participate in shard selection: all keyword variants
    of one ``(view, doc)`` pair share a shard, so skeleton reuse and
    invalidation are single-shard operations.

    ``qpt_hash`` is the QPT's *content hash*
    (:attr:`repro.core.qpt.QPT.content_hash`), never its object
    identity: a structurally identical QPT built in a fresh process —
    or by re-registering the same view text — produces the same keys,
    which is what lets the persistent skeleton store and any future
    shared tier serve entries across process boundaries.

    Keys are *self-invalidating* under concurrency: the document
    ``generation`` changes on every reload and the content hash changes
    with any structural redefinition, so a cache write that raced with
    either event is keyed by dead coordinates and can never be served
    (a redefinition that leaves the structure identical keeps the old
    entries valid by construction — same hash, same skeletons).  The
    ``invalidate_*`` helpers still drop entries eagerly (memory, not
    correctness).
    """

    prepared_capacity: int = 256
    pdt_capacity: int = 128
    skeleton_capacity: int = 64
    evaluated_capacity: int = 64
    #: Optional per-tier byte budgets (``None`` = unbounded bytes, the
    #: entry-count capacity still applies).  Values report their own
    #: footprint through ``memory_bytes`` (see
    #: :func:`default_sizer`) — DAG-compressed skeletons report the
    #: compressed per-instance footprint, so a budget buys
    #: correspondingly more resident views on repetitive corpora.
    prepared_byte_budget: Optional[int] = None
    pdt_byte_budget: Optional[int] = None
    skeleton_byte_budget: Optional[int] = None
    evaluated_byte_budget: Optional[int] = None
    shard_count: int = 8
    #: The single routing authority for every tier (defaults to a
    #: :class:`~repro.core.routing.ShardRouter` over ``shard_count``).
    #: Passing a shared instance lets the serving layer and the corpus
    #: shard plan route with the *same object* the cache partitions by.
    router: Optional[ShardRouter] = None
    prepared: ShardedLRUCache = field(init=False)
    pdts: ShardedLRUCache = field(init=False)
    skeletons: ShardedLRUCache = field(init=False)
    evaluated: ShardedLRUCache = field(init=False)

    def __post_init__(self) -> None:
        if self.router is None:
            self.router = ShardRouter(self.shard_count)
        self.prepared = ShardedLRUCache(
            self.prepared_capacity,
            self.shard_count,
            shard_key=lambda k: k[0],
            router=self.router,
            byte_budget=self.prepared_byte_budget,
        )
        self.pdts = ShardedLRUCache(
            self.pdt_capacity,
            self.shard_count,
            shard_key=lambda k: k[:2],
            router=self.router,
            byte_budget=self.pdt_byte_budget,
        )
        self.skeletons = ShardedLRUCache(
            self.skeleton_capacity,
            self.shard_count,
            shard_key=lambda k: k[:2],
            router=self.router,
            byte_budget=self.skeleton_byte_budget,
        )
        self.evaluated = ShardedLRUCache(
            self.evaluated_capacity,
            self.shard_count,
            shard_key=lambda k: k[0],
            router=self.router,
            byte_budget=self.evaluated_byte_budget,
        )

    # -- keys ---------------------------------------------------------------

    @staticmethod
    def prepared_key(
        doc_name: str,
        generation: int,
        qpt_hash: object,
        keywords: tuple[str, ...],
    ) -> tuple:
        return (doc_name, generation, qpt_hash, keywords)

    @staticmethod
    def skeleton_key(
        view_name: str, doc_name: str, generation: int, qpt_hash: object
    ) -> tuple:
        return (view_name, doc_name, generation, qpt_hash)

    @staticmethod
    def pdt_key(
        view_name: str,
        doc_name: str,
        generation: int,
        qpt_hash: object,
        keywords: tuple[str, ...],
    ) -> tuple:
        return (view_name, doc_name, generation, qpt_hash, keywords)

    @staticmethod
    def evaluated_key(
        view_name: str,
        view_expr: object,
        doc_coordinates: tuple[tuple[str, int, object], ...],
    ) -> tuple:
        """``doc_coordinates``: sorted ``(doc_name, generation, qpt_hash)``.

        Unlike the other tiers, the cached value (the view's result
        nodes) depends on the *whole view expression* — return clauses
        and cross-document predicates included — not just the QPT, and
        it never crosses a process boundary (result nodes are live
        objects).  The key therefore keeps the expression's object
        *identity*: two definitions with identical QPTs but different
        return clauses can never alias, and a put racing a view
        redefinition lands under the dead expression's key, where it can
        never be served — the self-invalidation guarantee the other
        tiers get from generations + content hashes.
        """
        return (view_name, view_expr, doc_coordinates)

    # -- shard routing -------------------------------------------------------

    def shard_for(self, view_name: str, doc_name: str) -> int:
        """The shard index the ``(view, doc)``-keyed tiers route to.

        The skeleton and PDT tiers share a shard count and both
        partition by the ``(view_name, doc_name)`` prefix of their keys,
        so they agree on this index.  The serving layer uses it to align
        per-``(view, doc)`` concurrency lanes with the cache's
        partitioning: requests that would contend on a shard's lock are
        serialized in front of the cache instead of inside it, and a hot
        view's traffic lands on a predictable lane.

        Delegates to the shared :class:`ShardRouter` — by construction
        identical to ``self.skeletons.shard_index((view_name,
        doc_name))``, and stable across processes.
        """
        return self.router.route(view_name, doc_name)

    # -- invalidation --------------------------------------------------------

    def invalidate_document(self, doc_name: str) -> int:
        """Drop all entries derived from ``doc_name`` (every tier)."""
        dropped = self.prepared.invalidate_where(lambda k: k[0] == doc_name)
        dropped += self.skeletons.invalidate_where(lambda k: k[1] == doc_name)
        dropped += self.pdts.invalidate_where(lambda k: k[1] == doc_name)
        dropped += self.evaluated.invalidate_where(
            lambda k: any(coord[0] == doc_name for coord in k[2])
        )
        return dropped

    def apply_document_delta(
        self,
        doc_name: str,
        old_generation: int,
        new_generation: int,
        patched_views: set[str],
    ) -> tuple[list[tuple[tuple, Any]], int]:
        """Delta-aware invalidation for one sub-document update.

        Skeleton entries of ``patched_views`` (the views the engine
        classified as skeleton-patchable for this edit) are *migrated* to
        the new generation instead of dropped — the caller then patches
        the skeleton objects in place.  Everything else derived from the
        document dies: prepared lists (they hold pre-edit index arrays),
        skeletons of non-patchable views or older generations, all PDTs
        (their tf annotations embed pre-edit postings), and evaluated
        results spanning the document.  Returns the moved ``(new_key,
        skeleton)`` pairs and the number of entries dropped.
        """
        moved = self.skeletons.rekey_where(
            lambda k: (
                k[1] == doc_name
                and k[2] == old_generation
                and k[0] in patched_views
            ),
            lambda k: (k[0], k[1], new_generation, k[3]),
        )
        dropped = self.prepared.invalidate_where(lambda k: k[0] == doc_name)
        dropped += self.skeletons.invalidate_where(
            lambda k: k[1] == doc_name and k[2] != new_generation
        )
        dropped += self.pdts.invalidate_where(lambda k: k[1] == doc_name)
        dropped += self.evaluated.invalidate_where(
            lambda k: any(coord[0] == doc_name for coord in k[2])
        )
        return moved, dropped

    def invalidate_view(self, view_name: str) -> int:
        """Drop the skeletons, PDTs and evaluated results of a (re)defined
        view.

        Prepared lists survive: they are keyed by QPT content hash, so a
        structural redefinition keys new entries under a new hash (stale
        ones age out of the LRU) and an identical redefinition keeps
        hitting the still-valid old entries.
        """
        dropped = self.skeletons.invalidate_where(lambda k: k[0] == view_name)
        dropped += self.pdts.invalidate_where(lambda k: k[0] == view_name)
        dropped += self.evaluated.invalidate_where(lambda k: k[0] == view_name)
        return dropped

    def clear(self) -> int:
        return (
            self.prepared.clear()
            + self.skeletons.clear()
            + self.pdts.clear()
            + self.evaluated.clear()
        )

    # -- diagnostics ---------------------------------------------------------

    def stats(self) -> dict[str, dict[str, Any]]:
        """Aggregate + per-shard counters for every tier."""
        return {
            "prepared": self.prepared.stats_dict(),
            "skeleton": self.skeletons.stats_dict(),
            "pdt": self.pdts.stats_dict(),
            "evaluated": self.evaluated.stats_dict(),
        }
