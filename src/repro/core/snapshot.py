"""A file-backed persistent store for PDT skeletons.

The skeleton tier makes first-contact queries cheap *within* a process;
this store makes them cheap across processes and restarts.  A skeleton
is a pure function of ``(document content, QPT structure)``, so the
store keys each snapshot by two content digests:

* the **document fingerprint** — SHA-256 of the canonical serialized
  document (:attr:`repro.storage.database.IndexedDocument.fingerprint`),
  stable across loads of identical content and different across any
  content change; and
* the **QPT content hash**
  (:attr:`repro.core.qpt.QPT.content_hash`) — structure + axes +
  annotations, stable across processes.

Invalidation therefore needs no protocol: regenerating a document or
changing a view's structure changes a key component, and the old
snapshot simply can never be addressed again (``prune`` reclaims the
orphaned files; serving a stale result is impossible by construction).
The in-process cache tiers keep their ``(generation, qpt_hash)`` keys —
the store sits *behind* the skeleton tier, consulted only on a skeleton
miss and filled on every fresh build, so a restarted engine (or a
sibling process sharing the directory) loads structural work instead of
redoing path probes and the merge pass.

Writes are atomic (temp file + ``os.replace``) so concurrent readers
never observe a torn snapshot; corrupt or truncated payloads read back
as misses, never as data.
"""

from __future__ import annotations

import os
import tempfile
import threading
from pathlib import Path
from typing import Iterator, Optional, Union

from repro.core.pdt import PDTSkeleton

_SUFFIX = ".pdts"


class SkeletonStore:
    """Directory of serialized skeletons keyed by content digests.

    Safe to share between processes: keys are content-derived (never
    process-local identities or generation counters), writes are atomic
    renames, and loads validate the payload before trusting it.  A
    single store instance is also safe to use from multiple threads —
    the only mutable in-memory state is the counters, which are guarded
    by a lock.
    """

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.saves = 0
        self.hits = 0
        self.misses = 0
        self._stats_lock = threading.Lock()

    def _count(self, counter: str) -> None:
        with self._stats_lock:
            setattr(self, counter, getattr(self, counter) + 1)

    # -- keys ----------------------------------------------------------------

    @staticmethod
    def entry_name(doc_fingerprint: str, qpt_hash: str) -> str:
        """Filename for one snapshot: ``<qpt_hash>-<doc_fingerprint>``.

        Both components are hex digests; they are truncated to 32 chars
        each (128 bits) to keep names filesystem-friendly without
        meaningfully weakening collision resistance.
        """
        return f"{qpt_hash[:32]}-{doc_fingerprint[:32]}{_SUFFIX}"

    def path_for(self, doc_fingerprint: str, qpt_hash: str) -> Path:
        return self.root / self.entry_name(doc_fingerprint, qpt_hash)

    # -- operations ----------------------------------------------------------

    def save(
        self,
        doc_fingerprint: str,
        qpt_hash: str,
        skeleton: PDTSkeleton,
    ) -> Path:
        """Persist a skeleton; atomic, last-writer-wins.

        Concurrent writers racing on the same key write identical
        content (the key pins both inputs of the pure function), so the
        race is benign.
        """
        target = self.path_for(doc_fingerprint, qpt_hash)
        payload = skeleton.to_bytes()
        descriptor, temp_name = tempfile.mkstemp(
            dir=self.root, prefix=".tmp-", suffix=_SUFFIX
        )
        try:
            with os.fdopen(descriptor, "wb") as handle:
                handle.write(payload)
            os.replace(temp_name, target)
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise
        self._count("saves")
        return target

    def load(
        self, doc_fingerprint: str, qpt_hash: str
    ) -> Optional[PDTSkeleton]:
        """The stored skeleton, or ``None`` (missing *or* unreadable).

        A corrupt file counts as a miss and is removed so the next
        build re-snapshots cleanly — but only if the file on disk is
        still the payload we read.  A concurrent :meth:`save` can
        ``os.replace`` a fresh, valid snapshot in between our read and
        the cleanup; blindly unlinking would then delete the *new*
        writer's work.  Re-statting and comparing identity (inode,
        size, mtime) before the unlink keeps cleanup scoped to the
        corrupt payload this reader actually observed.
        """
        target = self.path_for(doc_fingerprint, qpt_hash)
        try:
            before = target.stat()
            payload = target.read_bytes()
        except OSError:
            self._count("misses")
            return None
        try:
            skeleton = PDTSkeleton.from_bytes(payload)
        except ValueError:
            self._count("misses")
            try:
                after = target.stat()
                if (
                    after.st_ino == before.st_ino
                    and after.st_size == before.st_size
                    and after.st_mtime_ns == before.st_mtime_ns
                ):
                    target.unlink()
            except OSError:
                pass
            return None
        self._count("hits")
        return skeleton

    def discard(self, doc_fingerprint: str, qpt_hash: str) -> bool:
        """Remove one snapshot if present; missing is not an error.

        Used by delta maintenance to reclaim the old-fingerprint
        snapshot after forwarding a patched skeleton to a document's
        new fingerprint — the old key is unaddressable by construction,
        so this only frees disk, never loses reachable state.
        """
        try:
            self.path_for(doc_fingerprint, qpt_hash).unlink()
            return True
        except OSError:
            return False

    def __contains__(self, key: tuple[str, str]) -> bool:
        doc_fingerprint, qpt_hash = key
        return self.path_for(doc_fingerprint, qpt_hash).exists()

    def entries(self) -> Iterator[Path]:
        """Every snapshot file currently in the store."""
        return (
            path
            for path in sorted(self.root.glob(f"*{_SUFFIX}"))
            if not path.name.startswith(".tmp-")
        )

    def __len__(self) -> int:
        return sum(1 for _ in self.entries())

    def prune(self, keep: Optional[set[str]] = None) -> int:
        """Delete snapshot files, returning how many were removed.

        With ``keep`` (a set of :meth:`entry_name` filenames) only
        files *not* named survive — how an operator reclaims snapshots
        orphaned by document regeneration or view evolution.  Without
        it, the store is emptied.
        """
        removed = 0
        for path in list(self.entries()):
            if keep is not None and path.name in keep:
                continue
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def stats(self) -> dict[str, int]:
        with self._stats_lock:
            snapshot = {
                "saves": self.saves,
                "hits": self.hits,
                "misses": self.misses,
            }
        snapshot["entries"] = len(self)
        return snapshot
