"""A file-backed persistent store for PDT skeletons.

The skeleton tier makes first-contact queries cheap *within* a process;
this store makes them cheap across processes and restarts.  A skeleton
is a pure function of ``(document content, QPT structure)``, so the
store keys each snapshot by two content digests:

* the **document fingerprint** — SHA-256 of the canonical serialized
  document (:attr:`repro.storage.database.IndexedDocument.fingerprint`),
  stable across loads of identical content and different across any
  content change; and
* the **QPT content hash**
  (:attr:`repro.core.qpt.QPT.content_hash`) — structure + axes +
  annotations, stable across processes.

Invalidation therefore needs no protocol: regenerating a document or
changing a view's structure changes a key component, and the old
snapshot simply can never be addressed again (``prune`` reclaims the
orphaned files; serving a stale result is impossible by construction).
The in-process cache tiers keep their ``(generation, qpt_hash)`` keys —
the store sits *behind* the skeleton tier, consulted only on a skeleton
miss and filled on every fresh build, so a restarted engine (or a
sibling process sharing the directory) loads structural work instead of
redoing path probes and the merge pass.

Writes are atomic (temp file + ``os.replace``) so concurrent readers
never observe a torn snapshot; corrupt or truncated payloads read back
as misses, never as data.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path
from typing import Iterator, Optional, Union

from repro.core.pdt import PDTSkeleton

_SUFFIX = ".pdts"


class SkeletonStore:
    """Directory of serialized skeletons keyed by content digests.

    Safe to share between processes: keys are content-derived (never
    process-local identities or generation counters), writes are atomic
    renames, and loads validate the payload before trusting it.  A
    single store instance is also safe to use from multiple threads —
    there is no mutable in-memory state beyond counters.
    """

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.saves = 0
        self.hits = 0
        self.misses = 0

    # -- keys ----------------------------------------------------------------

    @staticmethod
    def entry_name(doc_fingerprint: str, qpt_hash: str) -> str:
        """Filename for one snapshot: ``<qpt_hash>-<doc_fingerprint>``.

        Both components are hex digests; they are truncated to 32 chars
        each (128 bits) to keep names filesystem-friendly without
        meaningfully weakening collision resistance.
        """
        return f"{qpt_hash[:32]}-{doc_fingerprint[:32]}{_SUFFIX}"

    def path_for(self, doc_fingerprint: str, qpt_hash: str) -> Path:
        return self.root / self.entry_name(doc_fingerprint, qpt_hash)

    # -- operations ----------------------------------------------------------

    def save(
        self,
        doc_fingerprint: str,
        qpt_hash: str,
        skeleton: PDTSkeleton,
    ) -> Path:
        """Persist a skeleton; atomic, last-writer-wins.

        Concurrent writers racing on the same key write identical
        content (the key pins both inputs of the pure function), so the
        race is benign.
        """
        target = self.path_for(doc_fingerprint, qpt_hash)
        payload = skeleton.to_bytes()
        descriptor, temp_name = tempfile.mkstemp(
            dir=self.root, prefix=".tmp-", suffix=_SUFFIX
        )
        try:
            with os.fdopen(descriptor, "wb") as handle:
                handle.write(payload)
            os.replace(temp_name, target)
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise
        self.saves += 1
        return target

    def load(
        self, doc_fingerprint: str, qpt_hash: str
    ) -> Optional[PDTSkeleton]:
        """The stored skeleton, or ``None`` (missing *or* unreadable).

        A corrupt file counts as a miss and is removed so the next
        build re-snapshots cleanly.
        """
        target = self.path_for(doc_fingerprint, qpt_hash)
        try:
            payload = target.read_bytes()
        except OSError:
            self.misses += 1
            return None
        try:
            skeleton = PDTSkeleton.from_bytes(payload)
        except ValueError:
            self.misses += 1
            try:
                target.unlink()
            except OSError:
                pass
            return None
        self.hits += 1
        return skeleton

    def __contains__(self, key: tuple[str, str]) -> bool:
        doc_fingerprint, qpt_hash = key
        return self.path_for(doc_fingerprint, qpt_hash).exists()

    def entries(self) -> Iterator[Path]:
        """Every snapshot file currently in the store."""
        return (
            path
            for path in sorted(self.root.glob(f"*{_SUFFIX}"))
            if not path.name.startswith(".tmp-")
        )

    def __len__(self) -> int:
        return sum(1 for _ in self.entries())

    def prune(self, keep: Optional[set[str]] = None) -> int:
        """Delete snapshot files, returning how many were removed.

        With ``keep`` (a set of :meth:`entry_name` filenames) only
        files *not* named survive — how an operator reclaims snapshots
        orphaned by document regeneration or view evolution.  Without
        it, the store is emptied.
        """
        removed = 0
        for path in list(self.entries()):
            if keep is not None and path.name in keep:
                continue
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def stats(self) -> dict[str, int]:
        return {
            "saves": self.saves,
            "hits": self.hits,
            "misses": self.misses,
            "entries": len(self),
        }
