"""A file-backed persistent store for PDT skeletons.

The skeleton tier makes first-contact queries cheap *within* a process;
this store makes them cheap across processes and restarts.  A skeleton
is a pure function of ``(document content, QPT structure)``, so the
store keys each snapshot by two content digests:

* the **document fingerprint** — SHA-256 of the canonical serialized
  document (:attr:`repro.storage.database.IndexedDocument.fingerprint`),
  stable across loads of identical content and different across any
  content change; and
* the **QPT content hash**
  (:attr:`repro.core.qpt.QPT.content_hash`) — structure + axes +
  annotations, stable across processes.

Invalidation therefore needs no protocol: regenerating a document or
changing a view's structure changes a key component, and the old
snapshot simply can never be addressed again (``prune`` reclaims the
orphaned files; serving a stale result is impossible by construction).
The in-process cache tiers keep their ``(generation, qpt_hash)`` keys —
the store sits *behind* the skeleton tier, consulted only on a skeleton
miss and filled on every fresh build, so a restarted engine (or a
sibling process sharing the directory) loads structural work instead of
redoing path probes and the merge pass.

Writes are atomic (temp file + ``os.replace``) so concurrent readers
never observe a torn snapshot; corrupt or truncated payloads read back
as misses, never as data.

Two load paths exist.  The default **eager** path parses the payload
back into a full :class:`PDTSkeleton` on the spot.  With
``mmap_mode=True`` the store instead memory-maps v2 payloads and
returns a :class:`MappedSkeleton`: load time is an O(1) header
validation plus a page table entry, the column arrays stay on disk
until something actually dereferences them, and the first deep access
(annotation, compression) materializes the eager skeleton lazily.
Legacy v1 payloads fall back to the eager parse transparently.
"""

from __future__ import annotations

import mmap
import os
import tempfile
import threading
from pathlib import Path
from typing import Iterator, Optional, Union

from repro.core.faults import FAULT_CORRUPT, FaultInjector
from repro.core.pdt import (
    PDTSkeleton,
    SkeletonLayout,
    _SKELETON_VERSION,
    patch_skeleton_byte_lengths,
    serialize_skeleton,
    skeleton_payload_version,
)
from repro.errors import InjectedFaultError

_SUFFIX = ".pdts"


class MappedSkeleton:
    """A zero-copy skeleton view over an mmap-ed v2 snapshot payload.

    Construction validates the offset-table header in O(1) — magic,
    version and the total-length equation over the section sizes — and
    decodes only the document name; the packed column arrays are left
    on disk for the OS to page in on demand.  The cheap identity facts
    an engine checks before admitting a snapshot (``doc_name``,
    ``entry_count``, ``node_count``) never touch the columns at all.

    Deep access (``tree``, ``bounds``, ``records``, annotation) routes
    through a lazily-materialized inner eager skeleton; column
    corruption beyond the header is therefore surfaced at first deep
    access (as ``ValueError``), not at load — the documented trade for
    page-in restores.  Delta patches materialize too, and flip the
    instance to re-encode on ``to_bytes`` so patched state round-trips.
    """

    __slots__ = ("_buffer", "_close", "_layout", "_inner", "_patched")

    def __init__(self, buffer, close=None):
        self._layout = SkeletonLayout(buffer)  # O(1) header validation
        self._buffer = buffer
        self._close = close
        self._inner: Optional[PDTSkeleton] = None
        self._patched = False

    # -- O(1) facts ----------------------------------------------------------

    @property
    def doc_name(self) -> str:
        return self._layout.doc_name

    @property
    def entry_count(self) -> int:
        return self._layout.entry_count

    @property
    def node_count(self) -> int:
        return self._layout.record_count

    @property
    def content_count(self) -> int:
        return self._layout.content_count

    def stats(self) -> dict[str, int]:
        return {"nodes": self.node_count, "entries": self.entry_count}

    @property
    def memory_bytes(self) -> int:
        """Mapped pages until materialized, the eager estimate after."""
        inner = self._inner
        if inner is not None:
            return inner.memory_bytes
        return len(self._buffer)

    # -- lazy deep surface ---------------------------------------------------

    def _skeleton(self) -> PDTSkeleton:
        inner = self._inner
        if inner is None:
            inner = PDTSkeleton.from_bytes(self._buffer)
            self._inner = inner
        return inner

    @property
    def records(self):
        return self._skeleton().records

    @property
    def ordered(self):
        return self._skeleton().ordered

    @property
    def parents(self):
        return self._skeleton().parents

    @property
    def slots(self):
        return self._skeleton().slots

    @property
    def dewey_ids(self):
        return self._skeleton().dewey_ids

    @property
    def bounds(self):
        return self._skeleton().bounds

    @property
    def slot_bounds(self):
        return self._skeleton().slot_bounds

    @property
    def tree(self):
        return self._skeleton().tree

    # -- serialization / maintenance -----------------------------------------

    def to_bytes(self) -> bytes:
        """The payload itself — byte-identical until patched."""
        if self._patched:
            return serialize_skeleton(self._skeleton())
        return bytes(self._buffer)

    def patch_byte_lengths(
        self, ancestor_keys: tuple[bytes, ...], delta: int
    ) -> int:
        """Apply a delta patch (materializes; marks for re-encode)."""
        inner = self._skeleton()
        patched = patch_skeleton_byte_lengths(inner, ancestor_keys, delta)
        if patched:
            self._patched = True
        return patched

    def close(self) -> None:
        """Release the underlying mapping (idempotent)."""
        close = self._close
        self._close = None
        if close is not None:
            try:
                close()
            except OSError:  # pragma: no cover - platform-specific
                pass

    def __repr__(self) -> str:
        return (
            f"<MappedSkeleton {self.doc_name!r} nodes={self.node_count} "
            f"bytes={len(self._buffer)}>"
        )


class SkeletonStore:
    """Directory of serialized skeletons keyed by content digests.

    Safe to share between processes: keys are content-derived (never
    process-local identities or generation counters), writes are atomic
    renames, and loads validate the payload before trusting it.  A
    single store instance is also safe to use from multiple threads —
    the only mutable in-memory state is the counters, which are guarded
    by a lock.

    ``mmap_mode=True`` switches :meth:`load` to the zero-copy path:
    v2 payloads come back as :class:`MappedSkeleton` (header-validated,
    columns paged in on demand); v1 payloads and platforms where
    mapping fails fall back to the eager parse.  The default stays
    eager — a fully-decoded skeleton with no open file mappings —
    which is also the strictest validation point for store hygiene
    (corrupt payloads are detected and reclaimed at load, not later).

    ``fault_injector`` arms the chaos sites ``store.load`` and
    ``store.save``: an injected *error* on a load behaves exactly like
    an unreadable file (a counted miss — the store's contract is that
    storage trouble reads back as a miss, never as data), an injected
    *corruption* mangles the bytes (a corrupt save poisons the file for
    later readers to reject; a corrupt load is rejected and reclaimed
    on the spot), and an injected error on a save propagates like a
    real write failure.
    """

    def __init__(
        self,
        root: Union[str, Path],
        mmap_mode: bool = False,
        fault_injector: Optional[FaultInjector] = None,
    ):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.mmap_mode = mmap_mode
        self._faults = fault_injector
        self.saves = 0
        self.hits = 0
        self.misses = 0
        self.pruned = 0
        self._stats_lock = threading.Lock()

    def _count(self, counter: str) -> None:
        with self._stats_lock:
            setattr(self, counter, getattr(self, counter) + 1)

    # -- keys ----------------------------------------------------------------

    @staticmethod
    def entry_name(doc_fingerprint: str, qpt_hash: str) -> str:
        """Filename for one snapshot: ``<qpt_hash>-<doc_fingerprint>``.

        Both components are hex digests; they are truncated to 32 chars
        each (128 bits) to keep names filesystem-friendly without
        meaningfully weakening collision resistance.
        """
        return f"{qpt_hash[:32]}-{doc_fingerprint[:32]}{_SUFFIX}"

    def path_for(self, doc_fingerprint: str, qpt_hash: str) -> Path:
        return self.root / self.entry_name(doc_fingerprint, qpt_hash)

    # -- operations ----------------------------------------------------------

    def save(
        self,
        doc_fingerprint: str,
        qpt_hash: str,
        skeleton: PDTSkeleton,
    ) -> Path:
        """Persist a skeleton; atomic, last-writer-wins.

        Concurrent writers racing on the same key write identical
        content (the key pins both inputs of the pure function), so the
        race is benign.
        """
        return self.save_payload(doc_fingerprint, qpt_hash, skeleton.to_bytes())

    def save_payload(
        self, doc_fingerprint: str, qpt_hash: str, payload: bytes
    ) -> Path:
        """Persist already-serialized wire bytes under a key; atomic.

        The write-through primitive of the networked tier: a payload
        fetched from a peer is stored verbatim (it is the same pure
        function of the key, so bytes from any honest process are
        interchangeable with a local serialization).
        """
        if self._faults is not None:
            event = self._faults.act("store.save")  # error kind raises here
            if event is not None and event.kind == FAULT_CORRUPT:
                payload = self._faults.mangle(event, payload)
        target = self.path_for(doc_fingerprint, qpt_hash)
        descriptor, temp_name = tempfile.mkstemp(
            dir=self.root, prefix=".tmp-", suffix=_SUFFIX
        )
        try:
            with os.fdopen(descriptor, "wb") as handle:
                handle.write(payload)
            os.replace(temp_name, target)
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise
        self._count("saves")
        return target

    def read_payload(
        self, doc_fingerprint: str, qpt_hash: str
    ) -> Optional[bytes]:
        """The raw wire bytes of one snapshot, or ``None`` when missing.

        No parsing, no counter updates — this is the serving side of
        the peer protocol (a peer streams its stored bytes verbatim;
        the *fetching* side validates before trusting them), so a
        corrupt local file is passed through for the fetcher to reject
        rather than silently repaired here.
        """
        try:
            return self.path_for(doc_fingerprint, qpt_hash).read_bytes()
        except OSError:
            return None

    def _unlink_if_unchanged(self, target: Path, before: os.stat_result) -> None:
        """Reclaim a corrupt snapshot, but only the payload we observed.

        A concurrent :meth:`save` can ``os.replace`` a fresh, valid
        snapshot in between our read and the cleanup; blindly unlinking
        would then delete the *new* writer's work.  Re-statting and
        comparing identity (inode, size, mtime) keeps cleanup scoped to
        the corrupt payload this reader actually observed.
        """
        try:
            after = target.stat()
            if (
                after.st_ino == before.st_ino
                and after.st_size == before.st_size
                and after.st_mtime_ns == before.st_mtime_ns
            ):
                target.unlink()
        except OSError:
            pass

    def load(
        self, doc_fingerprint: str, qpt_hash: str
    ) -> Optional[Union[PDTSkeleton, MappedSkeleton]]:
        """The stored skeleton, or ``None`` (missing *or* unreadable).

        A corrupt file counts as a miss and is removed so the next
        build re-snapshots cleanly (see :meth:`_unlink_if_unchanged`
        for why the cleanup is stat-guarded).  In ``mmap_mode`` a valid
        v2 payload comes back as a :class:`MappedSkeleton` without
        reading the columns; anything else falls back to the eager
        parse below.
        """
        corrupt = None
        if self._faults is not None:
            try:
                event = self._faults.act("store.load")
            except InjectedFaultError:
                # An injected read failure is an unreadable file: miss.
                self._count("misses")
                return None
            if event is not None and event.kind == FAULT_CORRUPT:
                corrupt = event
        target = self.path_for(doc_fingerprint, qpt_hash)
        if self.mmap_mode and corrupt is None:
            return self._load_mapped(target)
        try:
            before = target.stat()
            payload = target.read_bytes()
        except OSError:
            self._count("misses")
            return None
        if corrupt is not None:
            # Injected read corruption: the mangled bytes fail the parse
            # below, so the load counts as a miss and the (actually
            # fine) file is reclaimed — exactly what real on-disk rot
            # would cost: a rebuild, never wrong data.
            payload = self._faults.mangle(corrupt, payload)
        try:
            skeleton = PDTSkeleton.from_bytes(payload)
        except ValueError:
            self._count("misses")
            self._unlink_if_unchanged(target, before)
            return None
        self._count("hits")
        return skeleton

    def _load_mapped(
        self, target: Path
    ) -> Optional[Union[PDTSkeleton, MappedSkeleton]]:
        """The zero-copy load path: map pages, validate the header only."""
        try:
            before = target.stat()
            handle = open(target, "rb")
        except OSError:
            self._count("misses")
            return None
        try:
            try:
                mapping = mmap.mmap(
                    handle.fileno(), 0, access=mmap.ACCESS_READ
                )
            finally:
                handle.close()
        except (OSError, ValueError):
            # Unmappable (e.g. an empty file): nothing valid to serve.
            self._count("misses")
            self._unlink_if_unchanged(target, before)
            return None
        try:
            version = skeleton_payload_version(mapping)
        except ValueError:
            mapping.close()
            self._count("misses")
            self._unlink_if_unchanged(target, before)
            return None
        if version != _SKELETON_VERSION:
            # Legacy payload: decode eagerly, release the mapping.
            payload = bytes(mapping)
            mapping.close()
            try:
                skeleton = PDTSkeleton.from_bytes(payload)
            except ValueError:
                self._count("misses")
                self._unlink_if_unchanged(target, before)
                return None
            self._count("hits")
            return skeleton
        try:
            mapped = MappedSkeleton(mapping, close=mapping.close)
        except ValueError:
            mapping.close()
            self._count("misses")
            self._unlink_if_unchanged(target, before)
            return None
        self._count("hits")
        return mapped

    def discard(self, doc_fingerprint: str, qpt_hash: str) -> bool:
        """Remove one snapshot if present; missing is not an error.

        Used by delta maintenance to reclaim the old-fingerprint
        snapshot after forwarding a patched skeleton to a document's
        new fingerprint — the old key is unaddressable by construction,
        so this only frees disk, never loses reachable state.
        """
        try:
            self.path_for(doc_fingerprint, qpt_hash).unlink()
            return True
        except OSError:
            return False

    def __contains__(self, key: tuple[str, str]) -> bool:
        doc_fingerprint, qpt_hash = key
        return self.path_for(doc_fingerprint, qpt_hash).exists()

    def entries(self) -> Iterator[Path]:
        """Every snapshot file currently in the store."""
        return (
            path
            for path in sorted(self.root.glob(f"*{_SUFFIX}"))
            if not path.name.startswith(".tmp-")
        )

    def __len__(self) -> int:
        return sum(1 for _ in self.entries())

    def prune(self, keep: Optional[set[str]] = None) -> int:
        """Delete snapshot files, returning how many were removed.

        With ``keep`` (a set of :meth:`entry_name` filenames) only
        files *not* named survive — how engine shutdown and warm-up
        reclaim snapshots orphaned by document regeneration or view
        evolution (the old keys are unaddressable by construction, so
        this only frees disk).  Without ``keep``, the store is emptied.
        The cumulative total is surfaced as ``pruned`` in
        :meth:`stats`.
        """
        removed = 0
        for path in list(self.entries()):
            if keep is not None and path.name in keep:
                continue
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        if removed:
            with self._stats_lock:
                self.pruned += removed
        return removed

    def stats(self) -> dict[str, int]:
        with self._stats_lock:
            snapshot = {
                "saves": self.saves,
                "hits": self.hits,
                "misses": self.misses,
                "pruned": self.pruned,
            }
        snapshot["entries"] = len(self)
        return snapshot
