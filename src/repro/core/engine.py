"""The end-to-end keyword-search-over-virtual-views engine.

``KeywordSearchEngine`` wires the paper's architecture together
(Figure 3): on a keyword query over a view it generates QPTs (phase 1),
builds PDTs from indices alone (phase 2), evaluates the unmodified view
query over the PDTs, scores every pruned result through a streaming
bounded-heap top-k selector, and defers materialization so document
storage is touched only when a winner's content is actually read
(phase 3).  Prepared index lists, keyword-independent PDT skeletons,
finished PDTs and evaluated view results are served from a sharded
four-tier LRU query cache keyed per document/view/keywords, invalidated
via database hooks on load/drop and self-invalidating across
reloads/redefinitions through generation- and QPT-stamped keys.

PDT trees are shared skeleton trees (keyword-independent: per-query tfs
live in flat arrays resolved through content-node slots), which is what
makes the evaluated tier sound — and makes the fully warm query path an
array sweep: one posting-list merge-join per keyword, a scoring pass
over cached result nodes, and the top-k heap.  Per-phase wall-clock
timings are recorded in ``last_timings`` — Figure 14's module breakdown,
with the PDT phase further split into its skeleton and postings halves.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field, fields
from typing import Callable, Optional, Sequence, Union

from repro.core.cache import QueryCache
from repro.core.materialize import materialize_result
from repro.core.pdt import (
    CompressedSkeleton,
    PDTResult,
    PDTSkeleton,
    annotate_skeleton,
    build_skeleton,
    compress_skeleton,
    generate_pdt,
    patch_skeleton_byte_lengths,
)
from repro.core.shapes import ShapeTable
from repro.core.prepare import (
    PreparedLists,
    prepare_inv_lists,
    prepare_path_lists,
)
from repro.core.qpt import QPT, generate_qpts
from repro.core.rewrite import make_pdt_resolver
from repro.core.snapshot import SkeletonStore
from repro.core.scoring import (
    ScoredResult,
    apply_scores,
    collect_statistics,
    containing_counts,
    filter_matching,
    idf_from_counts,
)
from repro.core.topk import TopKSelector
from repro.errors import (
    InjectedFaultError,
    StaleViewError,
    StorageError,
    UnsupportedQueryError,
    ViewDefinitionError,
)
from repro.storage.database import XMLDatabase
from repro.storage.update import DocumentDelta
from repro.xmlmodel.node import XMLNode
from repro.xmlmodel.serializer import serialize
from repro.xmlmodel.tokenizer import normalize_keyword
from repro.xquery.ast import (
    BooleanExpr,
    Expr,
    FLWOR,
    FTContains,
    Program,
    VarRef,
)
from repro.xquery.evaluator import EvalContext, Evaluator
from repro.xquery.functions import inline_functions
from repro.xquery.parser import parse_query


@dataclass
class View:
    """A named virtual view: parsed definition plus its QPTs."""

    name: str
    text: str
    expr: Expr  # function-free view expression
    qpts: dict[str, QPT]

    @property
    def document_names(self) -> list[str]:
        return sorted(self.qpts)


@dataclass
class PhaseTimings:
    """Wall-clock seconds per pipeline phase (Figure 14's modules).

    ``pdt`` is further attributed to its two halves so benchmarks can
    tell structure from data: ``pdt_skeleton`` is the keyword-independent
    structural work (path-index probes + the merge pass — zero on a
    skeleton-tier hit) and ``pdt_postings`` the per-query keyword work
    (inverted-list probes + the tf annotation pass).  The halves sum to
    at most ``pdt``; cache-tier lookups make up the (tiny) remainder.
    """

    qpt: float = 0.0
    pdt: float = 0.0
    evaluator: float = 0.0
    post_processing: float = 0.0
    pdt_skeleton: float = 0.0
    pdt_postings: float = 0.0

    @property
    def total(self) -> float:
        return self.qpt + self.pdt + self.evaluator + self.post_processing

    def as_dict(self) -> dict[str, float]:
        return {
            "qpt": self.qpt,
            "pdt": self.pdt,
            "pdt_skeleton": self.pdt_skeleton,
            "pdt_postings": self.pdt_postings,
            "evaluator": self.evaluator,
            "post_processing": self.post_processing,
            "total": self.total,
        }

    @classmethod
    def merge(
        cls, spans: Sequence["PhaseTimings"], concurrent: bool = True
    ) -> "PhaseTimings":
        """Aggregate several phase ledgers into one.

        ``concurrent=True`` models spans that ran side by side (the
        coordinator's shard executors under its thread pool): elapsed
        wall clock per phase is the *longest* span, so each field merges
        by max.  ``concurrent=False`` models serial composition (the
        coordinator's own scatter/merge spans stacked on top of the
        shard work, or shards executed one after another): fields sum.
        An empty sequence merges to all zeros either way.
        """
        merged = cls()
        combine = max if concurrent else sum
        for spec in fields(cls):
            values = [getattr(span, spec.name) for span in spans]
            setattr(merged, spec.name, combine(values) if values else 0.0)
        return merged


@dataclass
class SearchResult:
    """One ranked result: scores from the pruned form, content on demand."""

    rank: int
    score: float
    scored: ScoredResult
    _database: Optional[XMLDatabase] = field(repr=False, default=None)
    _materialized: Optional[XMLNode] = field(repr=False, default=None)

    @property
    def pruned(self) -> XMLNode:
        return self.scored.node

    @property
    def is_materialized(self) -> bool:
        """Whether full content has already been fetched from storage."""
        return self._materialized is not None

    def tf(self, keyword: str) -> int:
        return self.scored.tf(keyword)

    def materialize(self) -> XMLNode:
        """Fetch full content from document storage (cached).

        This is the only point at which a result touches the document
        store; everything before it ran off indices and the pruned tree.
        """
        if self._materialized is None:
            if self._database is None:
                raise StorageError(
                    "cannot materialize: this SearchResult is not attached "
                    "to a database (construct it with _database=... or use "
                    "the pruned tree)"
                )
            self._materialized = materialize_result(self.scored.node, self._database)
        return self._materialized

    def to_xml(self, indent: Optional[int] = None) -> str:
        return serialize(self.materialize(), indent=indent)


@dataclass
class SearchOutcome:
    """Everything a search produced (results + diagnostics)."""

    results: list[SearchResult]
    view_size: int
    matching_count: int
    idf: dict[str, float]
    pdts: dict[str, PDTResult]
    timings: PhaseTimings
    cache_hits: dict[str, str] = field(default_factory=dict)
    """Per-document cache outcome: ``"pdt"``, ``"skeleton"``,
    ``"snapshot"`` (skeleton restored from the persistent store — same
    zero-probe depth as a skeleton hit), ``"prepared"`` or ``"miss"``
    (deepest tier that hit)."""

    evaluated_hit: bool = False
    """Whether the view's result nodes came from the evaluated tier
    (keyword-independent evaluation skipped entirely)."""

    _cache: Optional[QueryCache] = field(default=None, repr=False)
    _cache_stats: Optional[dict] = field(default=None, repr=False)

    @property
    def cache_stats(self) -> dict[str, dict]:
        """Aggregate + per-shard cache counters (empty when the cache is
        disabled).  Lets benchmarks and the differential harness assert
        *where* time went — e.g. that a skeleton-warm query hit the
        skeleton tier.  Snapshotted lazily on first access (visiting
        every shard lock is too expensive for the per-query hot path)
        and memoized so repeated reads stay consistent."""
        if self._cache_stats is None:
            self._cache_stats = (
                self._cache.stats() if self._cache is not None else {}
            )
        return self._cache_stats


@dataclass
class ViewStatistics:
    """Phase-1 output of the scatter-gather scoring protocol.

    Everything one engine contributes *before* scores can exist: the
    unscored per-result statistics, the view size, and the per-keyword
    containing counts.  idf is a global statistic over the whole view
    (Section 2.2) — under a sharded corpus it exists only after every
    shard's ``view_size`` and ``containing`` integers are summed, so
    phase 1 stops at the integers and phase 2 (:func:`apply_scores`)
    runs once the global idf is known.  The counts are exact integer
    sums, which is why sharded scores come out bit-identical to the
    single-engine path.
    """

    scored: list[ScoredResult]
    view_size: int
    containing: dict[str, int]
    pdts: dict[str, PDTResult]
    cache_hits: dict[str, str]
    evaluated_hit: bool


class KeywordSearchEngine:
    """Keyword search over virtual XML views (the paper's Efficient system).

    By default the engine serves repeated queries through a sharded
    four-tier :class:`QueryCache` (prepared index lists, PDT skeletons,
    PDTs, evaluated view results); the cache is invalidated
    automatically when documents are loaded/dropped or a view name is
    redefined.  A warm skeleton means a query with a never-seen keyword
    set skips every path-index probe and the structural merge pass.
    Pass ``enable_cache=False`` for the original probe-every-time
    behavior, or supply a pre-configured ``cache``.

    The search entry points are safe to call from a thread pool (the
    serving layer does): all shared state is either immutable once
    published (views, QPTs, skeleton trees) or lock-protected (the
    cache), and the ``last_timings`` diagnostic is **thread-local** — a
    caller always reads the timings of its *own* most recent search,
    never a racing thread's.
    """

    def __init__(
        self,
        database: XMLDatabase,
        normalize_scores: bool = True,
        cache: Optional[QueryCache] = None,
        enable_cache: bool = True,
        snapshot_store: Optional["SkeletonStore"] = None,
        delta_maintenance: bool = True,
        rewarm_on_update: bool = True,
        dag_compression: bool = True,
        shape_table: Optional[ShapeTable] = None,
    ):
        self.database = database
        self.normalize_scores = normalize_scores
        self._thread_state = threading.local()
        self._hooks_lock = threading.Lock()
        self._timing_hooks: list[Callable[[str, "SearchOutcome"], None]] = []
        self._views: dict[str, View] = {}
        self._closed = False
        #: DAG-compress every skeleton entering the skeleton tier (and
        #: every snapshot restore) against ``shape_table`` — isomorphic
        #: subtree structures are stored once across all of this
        #: engine's skeletons.  ``dag_compression=False`` keeps the
        #: eager uncompressed path (ablation / difftest cross-checks).
        #: Pass a shared :class:`~repro.core.shapes.ShapeTable` to pool
        #: structure across engines (the sharded executors do).
        self.dag_compression = dag_compression
        if shape_table is None and dag_compression:
            shape_table = ShapeTable()
        self.shape_table = shape_table
        if cache is None and enable_cache:
            cache = QueryCache()
        self.cache = cache
        if snapshot_store is not None and cache is None:
            raise ValueError(
                "a snapshot store requires the query cache (the persistent "
                "tier backs the in-process skeleton tier); construct the "
                "engine with enable_cache=True"
            )
        #: Optional persistent skeleton tier (see
        #: :class:`repro.core.snapshot.SkeletonStore`): consulted on
        #: skeleton-tier misses and filled on every fresh build, so
        #: engine restarts and sibling processes sharing the directory
        #: load structural work instead of rebuilding it.
        self.snapshot_store = snapshot_store
        #: Delta-aware write path: when on (the default), sub-document
        #: updates migrate patchable skeleton-tier entries to the new
        #: generation instead of orphaning them, forward snapshots to the
        #: new fingerprint, and (with ``rewarm_on_update``) eagerly
        #: re-warm the affected views so the next query lands warm.  Off,
        #: an update behaves like the old invalidation storm: the bumped
        #: generation orphans every tier and the next query is cold.
        self.delta_maintenance = delta_maintenance
        self.rewarm_on_update = rewarm_on_update
        if cache is not None:
            database.add_invalidation_hook(self._on_document_change)
            if delta_maintenance:
                database.add_update_hook(self._on_document_update)

    @property
    def last_timings(self) -> Optional[PhaseTimings]:
        """Per-phase timings of the *calling thread's* last search."""
        return getattr(self._thread_state, "timings", None)

    @last_timings.setter
    def last_timings(self, timings: Optional[PhaseTimings]) -> None:
        self._thread_state.timings = timings

    # -- timing hooks -----------------------------------------------------------

    def add_timing_hook(
        self, hook: Callable[[str, "SearchOutcome"], None]
    ) -> None:
        """Register ``hook(view_name, outcome)`` to fire after every
        ``search_detailed`` completes (successful searches only).

        Hooks run on the searching thread, after the outcome is fully
        built; the serving layer and benchmarks use them to observe
        per-request phase timings and cache hits without wrapping every
        call site.  Hooks must be thread-safe and must not raise — an
        exception would surface as a search failure to that caller.
        Registration itself is thread-safe too (searches iterate over an
        immutable snapshot, so they never observe a half-applied edit).
        """
        with self._hooks_lock:
            self._timing_hooks = self._timing_hooks + [hook]

    def remove_timing_hook(
        self, hook: Callable[[str, "SearchOutcome"], None]
    ) -> None:
        with self._hooks_lock:
            self._timing_hooks = [h for h in self._timing_hooks if h != hook]

    def _on_document_change(self, doc_name: str) -> None:
        """Database hook: a document was loaded or dropped."""
        if self.cache is not None:
            self.cache.invalidate_document(doc_name)

    @staticmethod
    def _delta_patchable(qpt: QPT, delta: DocumentDelta) -> bool:
        """Can this view's skeletons survive the edit with a byte-length
        patch alone?

        Yes iff *no* removed or added element matches a QPT node anywhere
        along its full root-to-element path: then the edit cannot change
        which elements the structural pass emits (a removed element that
        influenced the skeleton only through a probed descendant would
        have that descendant — also removed — fail this check), so the
        record set, tree shape, values and entry count are all identical
        to a rebuild, and only the edit point's ancestor byte lengths
        moved.  Patchability is a function of the QPT's structure and the
        delta's paths only — two views with equal content hashes always
        agree, which is what lets snapshots be forwarded per hash.
        """
        for path in delta.removed_paths + delta.added_paths:
            if qpt.match_table(path)[len(path) - 1]:
                return False
        return True

    def _on_document_update(self, delta: DocumentDelta) -> None:
        """Database hook: a sub-document update was applied.

        The write path that replaces the invalidation storm: classify
        each registered view reading the document as patchable or not,
        migrate + patch the patchable skeleton-tier entries (and forward
        their snapshots to the new fingerprint), drop everything else
        derived from the document, and — unless ``rewarm_on_update`` is
        off — eagerly re-warm the affected views so the next query finds
        the skeleton and evaluated tiers hot.
        """
        cache = self.cache
        if cache is None:
            return
        doc_name = delta.doc_name
        affected: list[View] = []
        patched_views: set[str] = set()
        for name, view in self._views.items():
            qpt = view.qpts.get(doc_name)
            if qpt is None:
                continue
            affected.append(view)
            if self._delta_patchable(qpt, delta):
                patched_views.add(name)
        moved, _ = cache.apply_document_delta(
            doc_name,
            delta.old_generation,
            delta.new_generation,
            patched_views,
        )
        patched_by_hash: dict[str, PDTSkeleton] = {}
        seen: set[int] = set()
        for key, skeleton in moved:
            if id(skeleton) not in seen:
                seen.add(id(skeleton))
                patch_skeleton_byte_lengths(
                    skeleton, delta.ancestor_keys, delta.length_delta
                )
            patched_by_hash[key[3]] = skeleton
        self._forward_snapshots(delta, affected, patched_views, patched_by_hash)
        if self.rewarm_on_update:
            for view in affected:
                if all(name in self.database for name in view.qpts):
                    self.warm_view(view)

    def _forward_snapshots(
        self,
        delta: DocumentDelta,
        affected: list[View],
        patched_views: set[str],
        patched_by_hash: dict[str, PDTSkeleton],
    ) -> None:
        """Version the persistent tier forward across an update.

        For each affected QPT content hash: a patchable view's snapshot
        is re-written under the document's *new* fingerprint (patched in
        memory when the skeleton tier had it, else loaded from the old
        snapshot and patched), and the old-fingerprint snapshot is
        discarded — it is unaddressable by construction, so this only
        reclaims the disk instead of orphaning the file.
        """
        store = self.snapshot_store
        if store is None or delta.old_fingerprint is None:
            return
        if delta.doc_name not in self.database:
            return
        new_fingerprint = self.database.get(delta.doc_name).fingerprint
        handled: set[str] = set()
        for view in affected:
            qpt_hash = view.qpts[delta.doc_name].content_hash
            if qpt_hash in handled:
                continue
            handled.add(qpt_hash)
            if view.name in patched_views:
                skeleton = patched_by_hash.get(qpt_hash)
                if skeleton is None:
                    restored = store.load(delta.old_fingerprint, qpt_hash)
                    if restored is not None and restored.doc_name == delta.doc_name:
                        patch_skeleton_byte_lengths(
                            restored, delta.ancestor_keys, delta.length_delta
                        )
                        skeleton = restored
                if skeleton is not None:
                    store.save(new_fingerprint, qpt_hash, skeleton)
            store.discard(delta.old_fingerprint, qpt_hash)

    # -- skeleton interning / lifecycle -----------------------------------------

    def _intern_skeleton(
        self, skeleton: Union[PDTSkeleton, CompressedSkeleton]
    ) -> Union[PDTSkeleton, CompressedSkeleton]:
        """DAG-compress ``skeleton`` against the engine's shape table.

        Identity when ``dag_compression`` is off — the uncompressed (or
        mmap-backed) skeleton then enters the cache tier as-is.
        """
        if not self.dag_compression or self.shape_table is None:
            return skeleton
        return compress_skeleton(skeleton, self.shape_table)

    def prune_snapshots(self) -> int:
        """Drop persistent snapshots no live ``(document, view)`` pair can
        restore, returning the number of files removed.

        The live set is every ``(fingerprint, qpt hash)`` coordinate
        reachable from the currently registered views and the documents
        currently in the database; anything else in the store — older
        fingerprints, dropped views, other engines' leftovers — is
        unaddressable from here and only holds disk.  No-op without a
        snapshot store.
        """
        store = self.snapshot_store
        if store is None:
            return 0
        keep: set[str] = set()
        for view in self._views.values():
            for doc_name, qpt in view.qpts.items():
                if doc_name not in self.database:
                    continue
                fingerprint = self.database.get(doc_name).fingerprint
                keep.add(store.entry_name(fingerprint, qpt.content_hash))
        return store.prune(keep=keep)

    def close(self) -> None:
        """Release the engine's external hooks and tidy the snapshot tier.

        Unregisters the database invalidation/update hooks (so a dropped
        engine stops receiving write traffic) and prunes the snapshot
        store down to coordinates still reachable from the registered
        views.  Idempotent; the engine remains usable for reads after
        closing, it just no longer tracks writes.
        """
        if self._closed:
            return
        self._closed = True
        if self.cache is not None:
            self.database.remove_invalidation_hook(self._on_document_change)
            if self.delta_maintenance:
                self.database.remove_update_hook(self._on_document_update)
        self.prune_snapshots()

    def __enter__(self) -> "KeywordSearchEngine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- view management --------------------------------------------------------

    def define_view(self, name: str, text: str) -> View:
        """Parse and analyze a view definition; QPTs are built once here."""
        program = parse_query(text)
        expr = inline_functions(program)
        return self.register_view(name, expr, text)

    def register_view(self, name: str, expr: Expr, text: str = "") -> View:
        """Register an already-parsed, function-free view expression.

        ``define_view`` minus the parse step.  The sharded coordinator
        parses a view once and hands each shard executor the fragment
        expressions it owns; re-serializing them just to re-parse here
        would be wasted work (and a round-trip through the printer the
        AST does not have).
        """
        qpts = generate_qpts(expr)
        if not qpts:
            raise ViewDefinitionError(
                "view references no documents; nothing to search"
            )
        for doc_name in qpts:
            self.database.get(doc_name)  # fail fast on unknown documents
        view = View(name=name, text=text, expr=expr, qpts=qpts)
        if self.cache is not None and name in self._views:
            self.cache.invalidate_view(name)
        self._views[name] = view
        return view

    def get_view(self, name: str) -> View:
        try:
            return self._views[name]
        except KeyError:
            raise ViewDefinitionError(f"no view named {name!r}") from None

    def warm_view(self, view: Union[View, str]) -> dict[str, str]:
        """Pre-build the view's keyword-independent cached state.

        Runs one ``build_skeleton`` per ``(view, document)`` pair plus
        the (keyword-independent) view evaluation, filling the skeleton
        and evaluated cache tiers, so the *first* keyword query against
        the view — with any keyword set, including never-seen ones —
        performs zero path-index probes and skips the XQuery evaluator.
        With a snapshot store configured, warming prefers *restoring*
        each skeleton from disk over rebuilding it (warm-from-snapshot),
        and every skeleton it does build is persisted for the next
        process.  The serving layer calls this at startup for configured
        hot views; it is also safe mid-flight (idempotent, and cheap
        when the tiers are already warm).

        Returns the per-document cache outcome the warming pass itself
        saw (``"miss"`` = skeleton built now, ``"snapshot"`` = restored
        from the persistent store, ``"skeleton"``/``"pdt"`` = already
        warm), keyed by document name.
        """
        if self.cache is None:
            raise ValueError(
                "warm_view requires the query cache (the engine was "
                "constructed with enable_cache=False)"
            )
        if isinstance(view, str):
            view = self.get_view(view)
        elif self._views.get(view.name) is not view:
            # An unregistered (or since-redefined) View would run the
            # whole build with cacheable=False: all cost, zero warmth.
            raise ViewDefinitionError(
                f"cannot warm view {view.name!r}: the object is not the "
                "currently registered definition (re-fetch it with "
                "get_view, or warm by name)"
            )
        self._reject_stale(view)
        pdts, cache_hits, doc_coordinates = self._build_pdts(view, ())
        self._evaluate_view_results(view, pdts, doc_coordinates)
        return cache_hits

    # -- search -------------------------------------------------------------------

    def search(
        self,
        view: Union[View, str],
        keywords: Sequence[str],
        top_k: Optional[int] = 10,
        conjunctive: bool = True,
        materialize: bool = False,
    ) -> list[SearchResult]:
        """Ranked keyword search over a virtual view (Problem Ranked-KS).

        Results are lazy: document storage is touched only when a caller
        invokes ``materialize()``/``to_xml()`` on a result.  Pass
        ``materialize=True`` to eagerly expand every winner up front.
        """
        return self.search_detailed(
            view, keywords, top_k, conjunctive, materialize=materialize
        ).results

    def search_detailed(
        self,
        view: Union[View, str],
        keywords: Sequence[str],
        top_k: Optional[int] = 10,
        conjunctive: bool = True,
        materialize: bool = False,
    ) -> SearchOutcome:
        timings = PhaseTimings()
        start = time.perf_counter()
        if isinstance(view, str):
            view = self.get_view(view)
        self._reject_stale(view)
        normalized = tuple(normalize_keyword(keyword) for keyword in keywords)
        timings.qpt = time.perf_counter() - start

        # Phases 2–3a plus the statistics walk (see
        # collect_view_statistics).  This is the same phase-1 routine a
        # shard executor runs: the single engine *is* the 1-shard
        # degenerate case of the scatter-gather protocol.
        stats = self.collect_view_statistics(view, normalized, timings)

        # Phase 3b continued: idf from the (here: single-shard) counts,
        # scores, keyword semantics, and the bounded top-k heap.  No
        # result touches the document store here unless the caller opted
        # into eager materialization.
        start = time.perf_counter()
        idf = idf_from_counts(stats.view_size, stats.containing)
        apply_scores(stats.scored, idf, normalized, self.normalize_scores)
        kept = filter_matching(stats.scored, normalized, conjunctive)
        selector = TopKSelector(top_k)
        selector.extend(kept)
        winners = selector.results()
        results = [
            SearchResult(
                rank=rank,
                score=scored.score,
                scored=scored,
                _database=self.database,
            )
            for rank, scored in enumerate(winners, start=1)
        ]
        if materialize:
            for result in results:
                result.materialize()
        timings.post_processing += time.perf_counter() - start

        self.last_timings = timings
        search_outcome = SearchOutcome(
            results=results,
            view_size=stats.view_size,
            matching_count=len(kept),
            idf=idf,
            pdts=stats.pdts,
            timings=timings,
            cache_hits=stats.cache_hits,
            evaluated_hit=stats.evaluated_hit,
            _cache=self.cache,
        )
        for hook in tuple(self._timing_hooks):
            hook(view.name, search_outcome)
        return search_outcome

    def collect_view_statistics(
        self,
        view: Union[View, str],
        normalized: Sequence[str],
        timings: Optional[PhaseTimings] = None,
    ) -> ViewStatistics:
        """Phase 1 of the scatter-gather protocol: statistics, no scores.

        Runs the pipeline up to — but not including — scoring: PDT
        generation (phase 2), view evaluation (phase 3a), and the
        per-result statistics walk.  Scores need idf, and idf is a
        global view statistic; under a sharded corpus it exists only
        after every shard's integer counts are summed, so this method
        stops at the integers and leaves phase 2 of the protocol
        (:func:`repro.core.scoring.apply_scores` onward) to the caller.
        ``normalized`` must already be keyword-normalized.  When a
        timings ledger is passed, spans are *added* to the same phases
        ``search_detailed`` reports (pdt, evaluator; the statistics walk
        lands in post_processing).
        """
        if isinstance(view, str):
            view = self.get_view(view)
        self._reject_stale(view)
        normalized = tuple(normalized)

        start = time.perf_counter()
        pdts, cache_hits, doc_coordinates = self._build_pdts(
            view, normalized, timings
        )
        if timings is not None:
            timings.pdt += time.perf_counter() - start

        start = time.perf_counter()
        view_results, evaluated_hit = self._evaluate_view_results(
            view, pdts, doc_coordinates
        )
        if timings is not None:
            timings.evaluator += time.perf_counter() - start

        start = time.perf_counter()
        scored = collect_statistics(view_results, normalized, tf_source=pdts)
        containing = containing_counts(scored, normalized)
        if timings is not None:
            timings.post_processing += time.perf_counter() - start
        return ViewStatistics(
            scored=scored,
            view_size=len(scored),
            containing=containing,
            pdts=pdts,
            cache_hits=cache_hits,
            evaluated_hit=evaluated_hit,
        )

    def _reject_stale(self, view: View) -> None:
        """Fail fast when a view references dropped documents."""
        missing = [name for name in view.qpts if name not in self.database]
        if missing:
            raise StaleViewError(view.name, missing)

    def _build_pdts(
        self,
        view: View,
        normalized: tuple[str, ...],
        timings: Optional[PhaseTimings] = None,
    ) -> tuple[
        dict[str, PDTResult],
        dict[str, str],
        tuple[tuple[str, int, str], ...],
    ]:
        """Per-document PDTs for a query, through the cache tiers.

        Lookup order per document — deepest reuse first:

        1. **PDT tier** ``(view, doc, keywords)``: the finished tree.
        2. **Skeleton tier** ``(view, doc)``: the keyword-independent
           structural pass.  A hit means zero path-index probes — only
           the per-keyword inverted-list probes and the annotation pass
           run, so a warm view answers *never-seen* keyword sets without
           touching the path index.
        3. **Snapshot store** ``(doc fingerprint, qpt hash)``: the
           persistent tier, when configured.  A hit deserializes a
           skeleton some process built earlier — zero path probes, like
           a skeleton hit — refills the in-memory skeleton tier, and is
           reported as ``"snapshot"``.
        4. **Prepared tier** ``(doc, qpt hash, keywords)``: the raw
           probe results.  A hit skips all index probes but redoes the
           merge pass (and refills the skeleton tier from it for free).

        Every key embeds the QPT's *content hash*, never its object
        identity, so a structurally identical QPT built in a fresh
        process addresses the same entries.  Tiers apply only to
        *registered* views (name still bound to this exact ``View``):
        inline views from :meth:`execute` share the ``<inline>`` name
        and build throwaway QPTs per call, so caching them could alias
        across definitions.
        """
        cache = self.cache
        cacheable = cache is not None and self._views.get(view.name) is view
        store = self.snapshot_store
        pdts: dict[str, PDTResult] = {}
        cache_hits: dict[str, str] = {}
        doc_coordinates: list[tuple[str, int, str]] = []
        for doc_name in sorted(view.qpts):
            qpt = view.qpts[doc_name]
            qpt_hash = qpt.content_hash
            indexed = self.database.get(doc_name)
            # The generation captured here keys every tier this query
            # touches — including the evaluated tier — so one query's
            # cache traffic is generation-coherent per document even if a
            # reload lands mid-flight.
            doc_coordinates.append((doc_name, indexed.generation, qpt_hash))
            if cacheable:
                pdt_key = cache.pdt_key(
                    view.name,
                    doc_name,
                    indexed.generation,
                    qpt_hash,
                    normalized,
                )
                pdt = cache.pdts.get(pdt_key)
                if pdt is not None:
                    pdts[doc_name] = pdt
                    cache_hits[doc_name] = "pdt"
                    continue
            skeleton: Optional[PDTSkeleton] = None
            lists: Optional[PreparedLists] = None
            if cacheable:
                skeleton_key = cache.skeleton_key(
                    view.name, doc_name, indexed.generation, qpt_hash
                )
                skeleton = cache.skeletons.get(skeleton_key)
                lists_key = cache.prepared_key(
                    doc_name, indexed.generation, qpt_hash, normalized
                )
                lists = cache.prepared.get(lists_key)

            # Structural half: reuse the skeleton, restore it from the
            # persistent store, or build it (from cached probe results
            # when the prepared tier has them).
            start = time.perf_counter()
            if skeleton is not None:
                hit = "skeleton"
            else:
                if cacheable and store is not None and lists is None:
                    # Only genuine first contact goes to disk: with the
                    # prepared tier warm, rebuilding from the cached
                    # lists (no probes) is strictly cheaper than a file
                    # read + deserialize + finalization round trip.
                    restored = store.load(indexed.fingerprint, qpt_hash)
                    if restored is not None and restored.doc_name == doc_name:
                        # (A mismatched doc_name would mean a digest
                        # collision or a store shared across
                        # differently-named loads of the same content —
                        # never served blind.)
                        skeleton = self._intern_skeleton(restored)
                        hit = "snapshot"
                        cache.skeletons.put(skeleton_key, skeleton)
                if skeleton is None:
                    if lists is None:
                        hit = "miss"
                        path_lists = prepare_path_lists(
                            qpt, indexed.path_index
                        )
                        probed = frozenset(path_lists)
                    else:
                        hit = "prepared"
                        path_lists = lists.path_lists
                        probed = lists.probed
                    skeleton = build_skeleton(
                        qpt,
                        indexed.path_index,
                        path_lists=path_lists,
                        probed=probed,
                    )
                    if cacheable:
                        if store is not None:
                            # Serialize from the eager form *before*
                            # interning (identical bytes either way; the
                            # eager skeleton still has its columns hot).
                            # A failed snapshot write costs the *next*
                            # process a rebuild; it must never fail the
                            # query that already has its skeleton.
                            try:
                                store.save(
                                    indexed.fingerprint, qpt_hash, skeleton
                                )
                            except (OSError, InjectedFaultError):
                                pass
                        # Interning seeds the compressed skeleton's weak
                        # tree reference from the tree just built, so the
                        # annotation below reuses it instead of
                        # re-materializing.
                        skeleton = self._intern_skeleton(skeleton)
                        cache.skeletons.put(skeleton_key, skeleton)
            if timings is not None:
                timings.pdt_skeleton += time.perf_counter() - start

            # Keyword half: posting lists (from the prepared tier when
            # the exact keyword set was probed before) + annotation.
            start = time.perf_counter()
            if lists is None:
                inv_lists = prepare_inv_lists(
                    indexed.inverted_index, normalized
                )
                if cacheable and hit == "miss":
                    # The skeleton-hit path never probes path lists, so
                    # only the miss path can fill the prepared tier.
                    cache.prepared.put(
                        lists_key,
                        PreparedLists(
                            path_lists=path_lists,
                            inv_lists=inv_lists,
                            probed=probed,
                        ),
                    )
            else:
                inv_lists = lists.inv_lists
            pdt = annotate_skeleton(skeleton, inv_lists, normalized)
            if timings is not None:
                timings.pdt_postings += time.perf_counter() - start

            if cacheable:
                cache.pdts.put(pdt_key, pdt)
            pdts[doc_name] = pdt
            cache_hits[doc_name] = hit
        return pdts, cache_hits, tuple(doc_coordinates)

    def _evaluate_view_results(
        self,
        view: View,
        pdts: dict[str, PDTResult],
        doc_coordinates: tuple[tuple[str, int, str], ...],
    ) -> tuple[tuple[XMLNode, ...], bool]:
        """The view's result nodes, through the evaluated cache tier.

        The PDT trees handed to the evaluator are keyword-independent
        shared skeleton trees, so the evaluation result is a pure
        function of ``(view, per-document generations)`` — never of the
        query keywords.  A hit returns the exact node list a previous
        query's evaluation produced (shared read-only, like every other
        cached tree); scoring stays correct because per-query tfs are
        resolved through content-node slots against *this* query's
        ``pdts``, not through anything stored in the nodes.
        """
        cache = self.cache
        cacheable = cache is not None and self._views.get(view.name) is view
        key = None
        if cacheable:
            key = cache.evaluated_key(view.name, view.expr, doc_coordinates)
            cached = cache.evaluated.get(key)
            if cached is not None:
                return cached, True
        evaluator = Evaluator(EvalContext(resolver=make_pdt_resolver(pdts)))
        items = evaluator.evaluate(view.expr)
        # A tuple, not a list: the same object is cached and handed to
        # callers, so the sequence itself must be immutable.
        view_results = tuple(
            item for item in items if isinstance(item, XMLNode)
        )
        if cacheable:
            cache.evaluated.put(key, view_results)
        return view_results, False

    # -- diagnostics ------------------------------------------------------------

    def explain(self, view: Union[View, str], keywords: Sequence[str] = ()) -> str:
        """A human-readable plan report for a view.

        Shows each document's QPT (structure, axes, optional/mandatory
        edges, v/c annotations), the fixed probe plan PrepareLists will
        issue, and — when keywords are given — the PDT sizes a search
        would construct.  Intended for debugging view definitions and for
        teaching the architecture; not used by the pipeline itself.
        """
        from repro.core.prepare import probe_plan

        if isinstance(view, str):
            view = self.get_view(view)
        lines: list[str] = [f"view {view.name!r}"]
        normalized = tuple(normalize_keyword(keyword) for keyword in keywords)
        for doc_name in view.document_names:
            qpt = view.qpts[doc_name]
            lines.append(qpt.describe())
            lines.append("  probe plan:")
            for tag, pattern, with_values in probe_plan(qpt):
                shape = "".join(f"{axis}{step}" for axis, step in pattern)
                kind = "ids+values" if with_values else "ids"
                lines.append(f"    {shape}  ->  {kind}")
            if normalized:
                indexed = self.database.get(doc_name)
                pdt = generate_pdt(
                    qpt, indexed.path_index, indexed.inverted_index, normalized
                )
                lines.append(
                    f"  pdt: {pdt.node_count} elements "
                    f"(of {len(indexed.store)} in the document)"
                )
        if normalized:
            lines.append(f"keywords: {', '.join(normalized)}")
        return "\n".join(lines)

    # -- regular (non-keyword) queries via PDTs --------------------------------

    def evaluate_view(
        self, view: Union[View, str], materialize: bool = True
    ) -> list[XMLNode]:
        """Evaluate a view *without* keywords, through the PDT machinery.

        This implements the paper's closing observation ("our proposed PDT
        algorithms may be applied to optimize regular queries"): the view
        is evaluated over PDTs and, when ``materialize`` is set, each
        result is expanded from document storage.  With
        ``materialize=False`` the pruned results are returned as-is,
        which is what a pagination layer would keep around.
        """
        if isinstance(view, str):
            view = self.get_view(view)
        self._reject_stale(view)
        pdts, _, doc_coordinates = self._build_pdts(view, ())
        results, _ = self._evaluate_view_results(view, pdts, doc_coordinates)
        if not materialize:
            # A fresh list of shared, read-only pruned nodes (possibly
            # served from the evaluated tier) — callers must not mutate
            # the nodes themselves.
            return list(results)
        return [materialize_result(node, self.database) for node in results]

    # -- full keyword-query form (Figure 2) ----------------------------------------

    def execute(
        self, query_text: str, top_k: Optional[int] = 10
    ) -> list[SearchResult]:
        """Run a complete keyword query over a view, as in Figure 2.

        The query must be a FLWOR whose where clause applies ``ftcontains``
        to the iteration variable and whose return clause yields that
        variable; the remainder of the query is the view definition.
        """
        program = parse_query(query_text)
        expr = inline_functions(program)
        view_expr, keywords, conjunctive = extract_keyword_query(expr)
        qpts = generate_qpts(view_expr)
        view = View(name="<inline>", text=query_text, expr=view_expr, qpts=qpts)
        return self.search(view, keywords, top_k=top_k, conjunctive=conjunctive)


def extract_keyword_query(expr: Expr) -> tuple[Expr, tuple[str, ...], bool]:
    """Split a Figure-2-style keyword query into (view expr, keywords, mode).

    Recognized form: ``(let/for)+ where … $v ftcontains(…) … return $v``
    where ``$v`` is bound by the last for clause.  The ftcontains conjunct
    is removed from the where clause; what remains is the view definition
    whose results the engine scores.
    """
    if not isinstance(expr, FLWOR) or expr.where is None:
        raise UnsupportedQueryError(
            "keyword queries must be FLWOR expressions with an ftcontains "
            "where clause (see Figure 2 of the paper)"
        )
    ft, remainder = _split_ftcontains(expr.where)
    if ft is None:
        raise UnsupportedQueryError("the where clause has no ftcontains condition")
    if not isinstance(expr.ret, VarRef) or not isinstance(ft.expr, VarRef):
        raise UnsupportedQueryError(
            "ftcontains must apply to the returned view variable"
        )
    if expr.ret.name != ft.expr.name:
        raise UnsupportedQueryError(
            f"ftcontains variable ${ft.expr.name} does not match the returned "
            f"variable ${expr.ret.name}"
        )
    view_expr = FLWOR(expr.clauses, remainder, expr.ret)
    return view_expr, ft.keywords, ft.conjunctive


def _split_ftcontains(where: Expr) -> tuple[Optional[FTContains], Optional[Expr]]:
    """Remove the (single) ftcontains conjunct from a where clause."""
    if isinstance(where, FTContains):
        return where, None
    if isinstance(where, BooleanExpr) and where.op == "and":
        ft = None
        rest: list[Expr] = []
        for operand in where.operands:
            if isinstance(operand, FTContains) and ft is None:
                ft = operand
            else:
                rest.append(operand)
        if ft is None:
            return None, where
        if not rest:
            return ft, None
        if len(rest) == 1:
            return ft, rest[0]
        return ft, BooleanExpr("and", tuple(rest))
    return None, where
