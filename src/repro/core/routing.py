"""The one shard router every layer shares.

Three layers place work onto shards by hashing ``(view, doc)``-style
coordinates: the query cache partitions its tiers
(:class:`repro.core.cache.ShardedLRUCache`), the serving layer routes
requests onto execution lanes, and the corpus sharding layer
(:class:`repro.core.sharding.ShardPlan`) assigns documents to shard
executors.  Before this module each derived its placement
independently (builtin ``hash`` here, an ad-hoc ``hash((view, doc))``
there), which had two failure modes: the placements could silently
disagree — a serving lane no longer aligned with the cache shard it was
supposed to mirror — and builtin ``hash`` of strings is randomized per
process (``PYTHONHASHSEED``), so nothing derived from it was stable
across processes, which a document-to-shard *plan* must be.

:class:`ShardRouter` is that single authority.  It hashes a canonical
byte encoding of the key through BLAKE2b, so routing is

* **deterministic across processes** — no ``PYTHONHASHSEED``
  dependence; the same corpus always partitions the same way, which is
  what lets an ingest manifest or a snapshot directory built by one
  process be picked up by another;
* **shared** — the cache tiers, the serving lanes and the shard plan
  all call the same object (or an equal-configured one), so the three
  can never disagree about where a coordinate lives.
"""

from __future__ import annotations

import hashlib
from typing import Hashable

__all__ = ["ShardRouter"]


def _stable_bytes(key: Hashable) -> bytes:
    """A canonical byte encoding of a routing key.

    Keys are the shard-coordinate parts of cache keys and document
    names: strings, ints and (nested) tuples of them.  ``repr`` is
    stable across processes for those types, and distinct values of one
    type never collide (``repr`` round-trips them).  Arbitrary objects
    still *work* (any ``repr`` partitions deterministically within a
    process) — they just do not promise cross-process stability, which
    only document/view coordinates need.
    """
    return repr(key).encode("utf-8", "backslashreplace")


class ShardRouter:
    """Stable hash routing of keys onto ``shard_count`` shards."""

    __slots__ = ("shard_count",)

    def __init__(self, shard_count: int):
        if shard_count < 1:
            raise ValueError(f"shard_count must be >= 1, got {shard_count}")
        self.shard_count = shard_count

    def __repr__(self) -> str:
        return f"ShardRouter(shard_count={self.shard_count})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ShardRouter)
            and other.shard_count == self.shard_count
        )

    def index(self, key: Hashable) -> int:
        """The shard a (cache) key's coordinates route to."""
        digest = hashlib.blake2b(_stable_bytes(key), digest_size=8).digest()
        return int.from_bytes(digest, "big") % self.shard_count

    def route(self, *coordinates: Hashable) -> int:
        """The shard for explicit coordinates (``route(view, doc)``).

        Equivalent to ``index(coordinates)`` — in particular
        ``route(view, doc)`` agrees with a sharded cache tier whose
        ``shard_key`` extracts the ``(view, doc)`` prefix of its keys,
        which is exactly the alignment the serving lanes rely on.
        """
        return self.index(coordinates)

    def place_document(self, doc_name: str) -> int:
        """The home shard of a document (used by :class:`ShardPlan`)."""
        return self.index((doc_name,))
