"""Reference PDT computation straight from Definitions 1-3.

This module computes candidate elements (CE), PDT elements (PE) and the
resulting PDT directly over the in-memory document tree, with no indices
and no streaming — a deliberately simple O(|D| x |Q|) fixpoint that serves
as the oracle for property tests of the streaming algorithm in
:mod:`repro.core.pdt`.  It is not part of the query pipeline.
"""

from __future__ import annotations

from typing import Optional

from repro.core.qpt import QPT, QPTNode
from repro.dewey import DeweyID
from repro.xmlmodel.node import XMLNode
from repro.xmlmodel.serializer import serialized_length
from repro.xmlmodel.tokenizer import token_frequencies


def _matches_pattern(qpt: QPT, qnode: QPTNode, element: XMLNode) -> bool:
    """Does the root-to-element path match PathFromRoot(qnode)?"""
    tags = tuple(element.path_from_root())
    table = qpt.match_table(tags)
    return qnode in table[len(tags) - 1]


def candidate_elements(qpt: QPT, root: XMLNode) -> dict[int, set[XMLNode]]:
    """CE(n, D) for every QPT node n (Definition 1), computed bottom-up."""
    ce: dict[int, set[XMLNode]] = {node.index: set() for node in qpt.nodes}
    # Process QPT nodes children-first (reverse pre-order works for trees).
    for qnode in reversed(qpt.nodes):
        matching = ce[qnode.index]
        for element in root.iter():
            if not _matches_pattern(qpt, qnode, element):
                continue
            if qnode.predicates and not all(
                predicate.matches(element.value) for predicate in qnode.predicates
            ):
                continue
            satisfied = True
            for edge in qnode.mandatory_child_edges():
                child_candidates = ce[edge.child.index]
                if edge.axis == "/":
                    pool = element.children
                else:
                    pool = element.descendants()
                if not any(child in child_candidates for child in pool):
                    satisfied = False
                    break
            if satisfied:
                matching.add(element)
    return ce


def pdt_elements(qpt: QPT, root: XMLNode) -> dict[int, set[XMLNode]]:
    """PE(n, D) for every QPT node n (Definition 2), computed top-down."""
    ce = candidate_elements(qpt, root)
    pe: dict[int, set[XMLNode]] = {node.index: set() for node in qpt.nodes}
    for qnode in qpt.nodes:  # pre-order: parents before children
        edge = qnode.parent_edge
        assert edge is not None
        for element in ce[qnode.index]:
            if edge.parent is qpt.root:
                # Anchored at the document node: '/' means the element is
                # the document root; '//' allows any depth.
                if edge.axis == "/" and element.parent is not None:
                    continue
                pe[qnode.index].add(element)
                continue
            parent_pool = pe[edge.parent.index]
            if edge.axis == "/":
                ok = element.parent is not None and element.parent in parent_pool
            else:
                ok = any(anc in parent_pool for anc in element.ancestors())
            if ok:
                pe[qnode.index].add(element)
    return pe


def reference_pdt(
    qpt: QPT,
    root: XMLNode,
    keywords: tuple[str, ...] = (),
) -> dict[tuple[int, ...], dict]:
    """The PDT as a mapping dewey -> node description (Definition 3).

    Each description holds the tag, whether a value / content annotation
    applies, the value (for 'v' or predicate nodes), the subtree byte
    length and per-keyword subtree term frequencies (for 'c' nodes) —
    the exact information the streaming algorithm must reproduce.
    """
    pe = pdt_elements(qpt, root)
    result: dict[tuple[int, ...], dict] = {}
    for qnode in qpt.nodes:
        for element in pe[qnode.index]:
            assert element.dewey is not None
            key = element.dewey.components
            entry = result.setdefault(
                key,
                {
                    "tag": element.tag,
                    "value": None,
                    "wants_value": False,
                    "wants_content": False,
                    "byte_length": serialized_length(element),
                    "term_frequencies": {},
                },
            )
            if qnode.v_ann or qnode.predicates:
                entry["wants_value"] = True
                entry["value"] = element.value
            if qnode.c_ann:
                entry["wants_content"] = True
                entry["term_frequencies"] = {
                    keyword: _subtree_tf(element, keyword) for keyword in keywords
                }
    return result


def _subtree_tf(element: XMLNode, keyword: str) -> int:
    total = 0
    for node in element.iter():
        if node.text:
            total += token_frequencies(node.text).get(keyword, 0)
    return total


def reference_pdt_deweys(qpt: QPT, root: XMLNode) -> set[DeweyID]:
    """Just the PDT node ids (handy for concise assertions)."""
    return {DeweyID(components) for components in reference_pdt(qpt, root)}
