"""A networked tier behind the skeleton snapshot store.

:class:`~repro.core.snapshot.SkeletonStore` made skeletons cheap across
*restarts*; this module makes them cheap across *hosts*.  A cold fleet
member asks a warm peer for the snapshot bytes instead of rebuilding
from path probes — and because every snapshot key is a pure content
digest (``<qpt_hash>-<doc_fingerprint>``, see the store's module
docstring), bytes fetched from any honest peer are interchangeable
with a local serialization.  The peer serves its stored v2 wire bytes
verbatim; the fetching side validates them before trusting them.

The pieces:

* :class:`SnapshotPeer` — the protocol a remote source implements:
  ``fetch(doc_fingerprint, qpt_hash) -> bytes | None``.
* :class:`HTTPSnapshotPeer` — the stdlib HTTP implementation (GET
  ``/snapshots/<entry_name>`` against a peer's serving endpoint), with
  a per-fetch timeout and bounded exponential-backoff retries.
* :class:`~repro.core.health.CircuitBreaker` — after
  ``failure_threshold`` consecutive fetch failures the network path
  opens (every load falls back to the local cold build immediately, no
  timeout waits); after ``reset_after`` seconds one half-open trial
  fetch decides whether to close it again.  It lives in
  ``repro.core.health`` now (the coordinator quarantines shards with
  the same state machine) and is re-exported here for compatibility.
* :class:`NetworkedSkeletonStore` — wraps a local store; ``load``
  consults the local tier first, then the peer (validated +
  written through to local disk, so one fetch warms the file tier
  for every later process too), and falls back to ``None`` — the
  engine's existing cold build — when the network cannot help.
  Concurrent misses on the *same* key are coalesced into one fetch
  (single-flight: the first caller fetches, the rest wait and re-read
  the local tier).  Counts ``fetched`` / ``fetch_failed`` /
  ``fell_back`` / ``coalesced``.

Failure semantics, in one table::

    local hit                    -> skeleton        (no network touched)
    peer hit                     -> skeleton        fetched += 1
    peer miss (404)              -> None            fell_back += 1
    fetch error (after retries)  -> None            fetch_failed += 1, fell_back += 1
    breaker open                 -> None            fell_back += 1
    corrupt peer payload         -> None            fetch_failed += 1, fell_back += 1
    follower of an in-flight key -> leader's result coalesced += 1

``None`` always means "cold-build locally" — a fleet member never
fails a query because a peer is down.
"""

from __future__ import annotations

import threading
import time
import urllib.error
import urllib.request
from pathlib import Path
from typing import Callable, Iterator, Optional, Protocol, Union

from repro.core.faults import FAULT_CORRUPT, FaultInjector
from repro.core.health import CircuitBreaker
from repro.core.pdt import PDTSkeleton, SkeletonLayout
from repro.core.snapshot import MappedSkeleton, SkeletonStore
from repro.errors import InjectedFaultError, SnapshotFetchError

__all__ = [
    "CircuitBreaker",
    "HTTPSnapshotPeer",
    "NetworkedSkeletonStore",
    "SnapshotPeer",
]


class SnapshotPeer(Protocol):
    """Anything that can produce snapshot wire bytes for a content key."""

    def fetch(self, doc_fingerprint: str, qpt_hash: str) -> Optional[bytes]:
        """The peer's stored payload, ``None`` if the peer lacks it.

        Raises :class:`~repro.errors.SnapshotFetchError` when the peer
        could not be reached (as opposed to reached-but-missing).
        """
        ...  # pragma: no cover - protocol signature


class HTTPSnapshotPeer:
    """Fetch snapshot bytes from a peer's HTTP serving endpoint.

    ``GET <base_url>/snapshots/<entry_name>`` with a per-request
    ``timeout``; transport failures are retried up to ``retries`` times
    with exponential backoff (``backoff * 2**attempt`` seconds between
    tries) before raising :class:`SnapshotFetchError`.  An HTTP 404 is
    a definitive answer — the peer does not have the snapshot — and is
    returned as ``None`` without retrying.

    Built on ``urllib`` so the fleet path adds no dependencies;
    ``opener`` and ``sleep`` are injectable for tests.  The
    ``peer.fetch`` fault site covers the whole call: an injected error
    surfaces as a :class:`SnapshotFetchError` (what a real transport
    failure looks like to callers) and an injected corruption mangles
    the fetched bytes before validation sees them.
    """

    def __init__(
        self,
        base_url: str,
        timeout: float = 2.0,
        retries: int = 2,
        backoff: float = 0.05,
        opener: Optional[Callable[..., object]] = None,
        sleep: Callable[[float], None] = time.sleep,
        fault_injector: Optional[FaultInjector] = None,
    ):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self._open = opener or urllib.request.urlopen
        self._sleep = sleep
        self._faults = fault_injector

    def fetch(self, doc_fingerprint: str, qpt_hash: str) -> Optional[bytes]:
        entry = SkeletonStore.entry_name(doc_fingerprint, qpt_hash)
        corrupt = None
        if self._faults is not None:
            try:
                event = self._faults.act("peer.fetch")
            except InjectedFaultError as exc:
                raise SnapshotFetchError(entry, str(exc)) from exc
            if event is not None and event.kind == FAULT_CORRUPT:
                corrupt = event
        url = f"{self.base_url}/snapshots/{entry}"
        last_error = "no attempt made"
        for attempt in range(self.retries + 1):
            if attempt:
                self._sleep(self.backoff * (2 ** (attempt - 1)))
            try:
                with self._open(url, timeout=self.timeout) as response:
                    payload = response.read()
                if corrupt is not None:
                    payload = self._faults.mangle(corrupt, payload)
                return payload
            except urllib.error.HTTPError as exc:
                if exc.code == 404:
                    return None  # definitive miss: never retry
                last_error = f"HTTP {exc.code}"
            except (urllib.error.URLError, OSError) as exc:
                reason = getattr(exc, "reason", exc)
                last_error = f"{type(exc).__name__}: {reason}"
        raise SnapshotFetchError(entry, last_error)


class NetworkedSkeletonStore:
    """A :class:`SkeletonStore` with a peer behind its misses.

    Drop-in for the local store everywhere the engine, warm-up and
    delta-maintenance paths use one — same ``load`` / ``save`` /
    ``discard`` / ``prune`` / ``stats`` surface, same
    content-digest keys.  Only ``load`` changes: a local miss consults
    the peer (gated by the circuit breaker), validates the fetched
    bytes structurally (the O(1) :class:`SkeletonLayout` admission
    check the mmap tier uses), writes them through to the local store
    and re-loads from disk — so a fetched snapshot behaves exactly
    like a locally-saved one (including ``mmap_mode`` zero-copy
    restores, and including the eager mode's full-parse rejection of
    deeper corruption) and every later load, in this process or a
    sibling sharing the directory, is local.

    Network activity is counted separately from the local store's
    hit/miss counters: ``net_stats`` reports ``fetched`` (peer
    supplied the bytes), ``fetch_failed`` (the peer path errored after
    retries, or returned bytes that failed validation) and
    ``fell_back`` (the load returned ``None`` and the caller will
    cold-build).  ``stats`` merges both views.
    """

    def __init__(
        self,
        local: SkeletonStore,
        peer: SnapshotPeer,
        breaker: Optional[CircuitBreaker] = None,
        single_flight_timeout: float = 30.0,
    ):
        self.local = local
        self.peer = peer
        self.breaker = breaker or CircuitBreaker()
        self.single_flight_timeout = single_flight_timeout
        self.fetched = 0
        self.fetch_failed = 0
        self.fell_back = 0
        self.coalesced = 0
        self._net_lock = threading.Lock()
        self._inflight: dict[tuple[str, str], threading.Event] = {}

    def _count(self, *counters: str) -> None:
        with self._net_lock:
            for counter in counters:
                setattr(self, counter, getattr(self, counter) + 1)

    # -- the networked load path ---------------------------------------------

    def load(
        self, doc_fingerprint: str, qpt_hash: str
    ) -> Optional[Union[PDTSkeleton, MappedSkeleton]]:
        found = self.local.load(doc_fingerprint, qpt_hash)
        if found is not None:
            return found
        # Single-flight: concurrent misses on the same key ride one
        # fetch.  The first caller through becomes the leader and runs
        # the networked path; followers wait for it to finish, then
        # re-read the (now write-through-warmed) local tier.
        key = (doc_fingerprint, qpt_hash)
        with self._net_lock:
            done = self._inflight.get(key)
            if done is None:
                done = threading.Event()
                self._inflight[key] = done
                leader = True
            else:
                leader = False
        if not leader:
            finished = done.wait(self.single_flight_timeout)
            self._count("coalesced")
            if not finished:
                # A hung leader must not hang the fleet: degrade to a
                # local cold build.
                self._count("fell_back")
                return None
            restored = self.local.load(doc_fingerprint, qpt_hash)
            if restored is None:
                # The leader's fetch failed/missed; we fall back too.
                self._count("fell_back")
            return restored
        try:
            return self._fetch_through(doc_fingerprint, qpt_hash)
        finally:
            with self._net_lock:
                self._inflight.pop(key, None)
            done.set()

    def _fetch_through(
        self, doc_fingerprint: str, qpt_hash: str
    ) -> Optional[Union[PDTSkeleton, MappedSkeleton]]:
        if not self.breaker.allow():
            self._count("fell_back")
            return None
        try:
            payload = self.peer.fetch(doc_fingerprint, qpt_hash)
        except SnapshotFetchError:
            self.breaker.record_failure()
            self._count("fetch_failed", "fell_back")
            return None
        self.breaker.record_success()
        if payload is None:
            # Reached the peer, it simply lacks the snapshot: the
            # breaker stays closed, the caller cold-builds.
            self._count("fell_back")
            return None
        try:
            # O(1) structural validation — magic, version, the offset
            # table's total-length equation — the same admission check
            # the mmap tier applies to a local file.  A full eager
            # parse here would cost more than the cold build it is
            # supposed to replace.
            SkeletonLayout(payload)
        except ValueError:
            self._count("fetch_failed", "fell_back")
            return None
        self.local.save_payload(doc_fingerprint, qpt_hash, payload)
        # Serve it through the local store so mmap_mode and the local
        # hit counters see a fetched snapshot exactly like a saved one.
        restored = self.local.load(doc_fingerprint, qpt_hash)
        if restored is None:
            # An eager-mode local load full-parses: corruption below
            # the offset table is rejected (and the file reclaimed)
            # there, after the cheap check above admitted it.
            self._count("fetch_failed", "fell_back")
            return None
        self._count("fetched")
        return restored

    # -- stats ---------------------------------------------------------------

    def net_stats(self) -> dict[str, int]:
        with self._net_lock:
            return {
                "fetched": self.fetched,
                "fetch_failed": self.fetch_failed,
                "fell_back": self.fell_back,
                "coalesced": self.coalesced,
            }

    def stats(self) -> dict:
        merged = dict(self.local.stats())
        merged.update(self.net_stats())
        merged["breaker_state"] = self.breaker.state
        return merged

    # -- local-store delegation ----------------------------------------------

    entry_name = staticmethod(SkeletonStore.entry_name)

    @property
    def root(self) -> Path:
        return self.local.root

    @property
    def mmap_mode(self) -> bool:
        return self.local.mmap_mode

    def path_for(self, doc_fingerprint: str, qpt_hash: str) -> Path:
        return self.local.path_for(doc_fingerprint, qpt_hash)

    def save(self, doc_fingerprint: str, qpt_hash: str, skeleton) -> Path:
        return self.local.save(doc_fingerprint, qpt_hash, skeleton)

    def save_payload(
        self, doc_fingerprint: str, qpt_hash: str, payload: bytes
    ) -> Path:
        return self.local.save_payload(doc_fingerprint, qpt_hash, payload)

    def read_payload(
        self, doc_fingerprint: str, qpt_hash: str
    ) -> Optional[bytes]:
        # Serving stays local on purpose: a peer asking *us* must never
        # trigger a recursive fetch storm through a third host.
        return self.local.read_payload(doc_fingerprint, qpt_hash)

    def discard(self, doc_fingerprint: str, qpt_hash: str) -> bool:
        return self.local.discard(doc_fingerprint, qpt_hash)

    def __contains__(self, key: tuple[str, str]) -> bool:
        return key in self.local

    def entries(self) -> Iterator[Path]:
        return self.local.entries()

    def __len__(self) -> int:
        return len(self.local)

    def prune(self, keep: Optional[set[str]] = None) -> int:
        return self.local.prune(keep=keep)
