"""Typed atomic-value semantics shared by indices, predicates and queries.

XML atomic values are strings; comparisons in the supported grammar
(``=``, ``<``, ``>`` plus the ``<=``, ``>=``, ``!=`` extensions) are numeric
when *both* operands parse as numbers and lexicographic otherwise.  Exactly
one implementation of this rule exists — here — and is used by the path
index (predicate push-down), the XQuery evaluator (where clauses) and the
PDT reference implementation, so that index probes and query evaluation can
never disagree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

# Sort-order kinds for composite index keys: nulls < numbers < strings.
KIND_NULL = 0
KIND_NUMBER = 1
KIND_STRING = 2

COMPARISON_OPS = ("=", "!=", "<", "<=", ">", ">=")


def parse_number(text: str) -> Optional[float]:
    """Parse ``text`` as a number, or ``None`` if it is not numeric."""
    try:
        return float(text)
    except (TypeError, ValueError):
        return None


def atom_key(value: Optional[str]) -> tuple:
    """A totally-ordered key for an atomic value, usable in B+-tree keys.

    Numeric strings order numerically within the number band; everything
    else orders lexicographically within the string band.  The key keeps
    the original string so equal numbers with different spellings
    (``01`` vs ``1``) share an index row only when they compare equal.
    """
    if value is None:
        return (KIND_NULL, "")
    number = parse_number(value)
    if number is not None:
        return (KIND_NUMBER, number, value)
    return (KIND_STRING, value)


def compare_atoms(op: str, left: Optional[str], right: Optional[str]) -> bool:
    """Apply a comparison operator to two atomic values.

    Comparisons against a missing value are false (XQuery's empty-sequence
    comparison semantics: ``() = x`` is false).
    """
    if left is None or right is None:
        return False
    left_num = parse_number(left)
    right_num = parse_number(right)
    if left_num is not None and right_num is not None:
        lhs, rhs = left_num, right_num
    else:
        lhs, rhs = left, right
    if op == "=":
        return lhs == rhs
    if op == "!=":
        return lhs != rhs
    if op == "<":
        return lhs < rhs
    if op == "<=":
        return lhs <= rhs
    if op == ">":
        return lhs > rhs
    if op == ">=":
        return lhs >= rhs
    raise ValueError(f"unsupported comparison operator: {op!r}")


@dataclass(frozen=True)
class Predicate:
    """A leaf-value predicate ``. op literal`` attached to a QPT node."""

    op: str
    literal: str

    def __post_init__(self):
        if self.op not in COMPARISON_OPS:
            raise ValueError(f"unsupported predicate operator: {self.op!r}")

    def matches(self, value: Optional[str]) -> bool:
        return compare_atoms(self.op, value, self.literal)

    def __str__(self) -> str:
        return f". {self.op} {self.literal!r}"


def join_key(value: Optional[str]):
    """Canonical key for value joins: numeric when possible, else string.

    Ensures ``1`` joins with ``1.0`` exactly when ``compare_atoms('=', ...)``
    would call them equal.
    """
    if value is None:
        return None
    number = parse_number(value)
    if number is not None:
        return ("n", number)
    return ("s", value)
