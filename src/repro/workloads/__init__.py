"""Workload generators and parameterized view builders for the evaluation.

``inex`` generates the synthetic INEX-like collection (the paper's 500MB
INEX dataset is licensed; see DESIGN.md for the substitution argument),
``bookrev`` generates the books & reviews running example, ``views`` builds
the XQuery view definitions the experiments sweep over, and ``params``
captures Table 1's parameter space.
"""

from repro.workloads.inex import INEXConfig, generate_inex_database
from repro.workloads.bookrev import generate_bookrev_database
from repro.workloads.views import (
    selection_view,
    authors_articles_view,
    nested_view,
    view_for_params,
)
from repro.workloads.params import (
    ExperimentParams,
    KEYWORDS_BY_SELECTIVITY,
    PARAMETER_TABLE,
)

__all__ = [
    "INEXConfig",
    "generate_inex_database",
    "generate_bookrev_database",
    "selection_view",
    "authors_articles_view",
    "nested_view",
    "view_for_params",
    "ExperimentParams",
    "KEYWORDS_BY_SELECTIVITY",
    "PARAMETER_TABLE",
]
