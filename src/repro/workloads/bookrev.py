"""The books & reviews running example (paper Figures 1 and 2).

A small deterministic generator for the two-source aggregation scenario:
``books.xml`` (books with isbn, title, publisher, year) and ``reviews.xml``
(reviews joining books on isbn).  Used by the quickstart example and by
integration tests that mirror the paper's narrative.
"""

from __future__ import annotations

import random

from repro.storage.database import XMLDatabase
from repro.xmlmodel.node import XMLNode

_TOPICS = [
    "xml web services",
    "artificial intelligence",
    "database systems",
    "information retrieval",
    "distributed computing",
    "compiler construction",
    "operating systems",
    "machine learning",
]
_PUBLISHERS = ["prentice hall", "addison wesley", "morgan kaufmann", "springer"]
_OPINIONS = [
    "easy to read and full of practical search examples",
    "dense but rewarding treatment of xml query processing",
    "excellent introduction to keyword search over structured data",
    "covers indexing and ranking in great depth",
    "a bit dated but the fundamentals hold",
    "the chapters about views and virtual data are superb",
]
_RATES = ["excellent", "good", "average", "poor"]
_REVIEWERS = ["john", "alex", "mary", "tina", "victor", "nadia"]

BOOKREV_VIEW = """
for $book in fn:doc(books.xml)/books//book
where $book/year > 1995
return <bookrevs>
   <book> {$book/title} </book>,
   {for $rev in fn:doc(reviews.xml)/reviews//review
    where $rev/isbn = $book/isbn
    return $rev/content}
</bookrevs>
"""

BOOKREV_KEYWORD_QUERY = """
let $view :=
  for $book in fn:doc(books.xml)/books//book
  where $book/year > 1995
  return <bookrevs>
     <book> {$book/title} </book>,
     {for $rev in fn:doc(reviews.xml)/reviews//review
      where $rev/isbn = $book/isbn
      return $rev/content}
  </bookrevs>
for $bookrev in $view
where $bookrev ftcontains('xml' & 'search')
return $bookrev
"""


def generate_bookrev_database(
    book_count: int = 40,
    reviews_per_book: int = 2,
    seed: int = 11,
    **database_kwargs,
) -> XMLDatabase:
    """Generate and index books.xml and reviews.xml."""
    rng = random.Random(seed)
    books = XMLNode("books")
    reviews = XMLNode("reviews")
    for number in range(1, book_count + 1):
        isbn = f"{number:03d}-{rng.randint(10, 99)}-{rng.randint(1000, 9999)}"
        book = books.make_child("book")
        book.make_child("isbn", isbn)
        topic = rng.choice(_TOPICS)
        book.make_child("title", f"{topic} volume {number}")
        book.make_child("publisher", rng.choice(_PUBLISHERS))
        book.make_child("year", str(rng.randint(1988, 2006)))
        for _ in range(rng.randint(0, reviews_per_book)):
            review = reviews.make_child("review")
            review.make_child("isbn", isbn)
            review.make_child("rate", rng.choice(_RATES))
            review.make_child("content", rng.choice(_OPINIONS))
            review.make_child("reviewer", rng.choice(_REVIEWERS))
    database = XMLDatabase(**database_kwargs)
    database.load_document("books.xml", books)
    database.load_document("reviews.xml", reviews)
    return database
