"""Parameterized view builders for the experiment sweeps.

The default experiment view nests articles under their authors via a value
join on the author name (Section 5.1: "a view in which articles are nested
under their authors").  The builders below produce the XQuery text for the
whole Table 1 sweep:

* ``num_joins`` — 0 removes the value join (selection only); 1 is the
  default authors-articles join; 2-4 chain further per-``fno`` joins
  (reviews, citations, venues) nested under each article;
* ``nesting_level`` — 1 is selection-only, 2 the default, 3 and 4 wrap the
  view in additional FLWOR levels over author groups / the author list.
"""

from __future__ import annotations

from repro.workloads.params import ExperimentParams

# Per-fno join chain: (document, root tag, item tag, content field).
_JOIN_CHAIN = [
    ("reviews.xml", "reviews", "review", "comment"),
    ("citations.xml", "citations", "citation", "note"),
    ("venues.xml", "venues", "venue", "note"),
]

YEAR_THRESHOLD = 1995


def selection_view(year: int = YEAR_THRESHOLD) -> str:
    """Selection-only view over articles (0 joins / nesting level 1)."""
    return f"""
for $art in fn:doc(articles.xml)/books//article
where $art/fm/yr > {year}
return <pub>
    {{$art/fm/atl}},
    {{$art/bdy}}
</pub>
"""


def _article_body(num_joins: int, year: int, var: str = "$art") -> str:
    """The per-article return body with the per-fno join chain nested."""
    nested = ""
    for index in range(max(0, num_joins - 1)):
        doc, root_tag, item_tag, content = _JOIN_CHAIN[index]
        item_var = f"$j{index}"
        nested += f""",
      {{for {item_var} in fn:doc({doc})/{root_tag}//{item_tag}
        where {item_var}/fno = {var}/fno
        return {item_var}/{content}}}"""
    return f"""<pub>
      {{{var}/fm/atl}},
      {{{var}/bdy}}{nested}
    </pub>"""


def authors_articles_view(
    num_joins: int = 1, year: int = YEAR_THRESHOLD
) -> str:
    """The default view: articles nested under their authors.

    ``num_joins=0`` degrades to the selection view; higher values chain
    per-fno joins under each article.
    """
    if num_joins == 0:
        return selection_view(year)
    body = _article_body(num_joins, year)
    return f"""
for $a in fn:doc(authors.xml)/authors//author
return <authorpubs>
   <name> {{$a/name}} </name>,
   {{for $art in fn:doc(articles.xml)/books//article
     where $art/fm/au = $a/name and $art/fm/yr > {year}
     return {body}}}
</authorpubs>
"""


def nested_view(
    nesting_level: int = 2,
    num_joins: int = 1,
    year: int = YEAR_THRESHOLD,
) -> str:
    """The nesting-level sweep (Table 1, "Level of nestings").

    Level 1 removes the value join and keeps the selection predicate;
    level 2 is the default view; levels 3 and 4 wrap the view one more
    FLWOR level at a time (author groups, then the whole author list).
    """
    if nesting_level <= 1:
        return selection_view(year)
    if nesting_level == 2:
        return authors_articles_view(num_joins=max(num_joins, 1), year=year)
    body = _article_body(max(num_joins, 1), year)
    inner = f"""for $a in $g//author
       return <authorpubs>
          <name> {{$a/name}} </name>,
          {{for $art in fn:doc(articles.xml)/books//article
            where $art/fm/au = $a/name and $art/fm/yr > {year}
            return {body}}}
       </authorpubs>"""
    if nesting_level == 3:
        return f"""
for $g in fn:doc(authors.xml)/authors/group
return <grouppubs>
   {{$g/affiliation}},
   {{{inner}}}
</grouppubs>
"""
    # Level 4: one more FLWOR over the whole author list.
    return f"""
for $all in fn:doc(authors.xml)/authors
return <digest>
   {{for $g in $all/group
     return <grouppubs>
        {{$g/affiliation}},
        {{{inner}}}
     </grouppubs>}}
</digest>
"""


def view_for_params(params: ExperimentParams) -> str:
    """The view a Table 1 configuration asks for."""
    if params.nesting_level != 2:
        return nested_view(
            nesting_level=params.nesting_level, num_joins=params.num_joins
        )
    return authors_articles_view(num_joins=params.num_joins)
