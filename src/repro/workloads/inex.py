"""Synthetic INEX-like collection generator.

Reproduces the structure of the paper's 500MB INEX publication collection
at laptop scale, following the DTD excerpt of Section 5.1::

    <!ELEMENT books (journal*)>
    <!ELEMENT journal (title, (sec1|article|sbt)*)>
    <!ELEMENT article (fno, doi?, fm, bdy)>
    <!ELEMENT fm (hdr?, (edinfo|au|kwd|fig)*)>

plus the pieces the experiments need: an ``authors.xml`` document for the
articles-under-authors view (the paper's default view joins articles to
``au`` elements), and per-``fno`` side documents (reviews, citations,
venues) that let the join-count sweep build 0-4 value joins.

Keyword selectivity is calibrated by construction: the three Table 1
keyword classes are planted with fixed per-paragraph probabilities (low ≈
frequent ≫ medium ≫ high ≈ rare), so inverted-list lengths differ by
roughly an order of magnitude per class.

All generation is deterministic given the seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.storage.database import XMLDatabase
from repro.xmlmodel.node import XMLNode

# Selectivity plant probabilities per paragraph (low = frequent terms).
_PLANT_PROBABILITY = {
    "low": 0.35,
    "medium": 0.06,
    "high": 0.01,
}
_PLANT_WORDS = {
    "low": ("ieee", "computing"),
    "medium": ("thomas", "control"),
    "high": ("moore", "burnett"),
}

_FILLER_WORDS = [
    "analysis", "system", "model", "data", "query", "index", "structure",
    "algorithm", "performance", "distributed", "parallel", "network",
    "database", "semantic", "retrieval", "document", "evaluation", "design",
    "architecture", "language", "optimization", "transaction", "storage",
    "memory", "cache", "protocol", "schema", "pattern", "stream", "graph",
    "logic", "theory", "framework", "application", "interface", "service",
    "integration", "processing", "scalable", "efficient", "adaptive",
    "dynamic", "static", "hybrid", "robust", "novel", "approach", "method",
    "technique", "experiment", "result", "measurement", "benchmark",
    "workload", "cluster", "partition", "replication", "consistency",
    "availability", "latency", "throughput", "bandwidth", "precision",
    "recall", "ranking", "relevance", "keyword", "search", "view",
]

_FIRST_NAMES = [
    "alice", "robert", "wei", "maria", "john", "sofia", "james", "elena",
    "david", "yuki", "peter", "anna", "carlos", "nina", "omar", "lucia",
]
_LAST_NAMES = [
    "smith", "garcia", "chen", "mueller", "tanaka", "rossi", "dubois",
    "novak", "silva", "kumar", "ivanov", "larsen", "papas", "walsh",
]
_CITIES = [
    "vienna", "seattle", "tokyo", "madrid", "toronto", "sydney", "munich",
    "lyon", "oslo", "prague",
]
_AFFILIATIONS = [
    "cornell", "stanford", "oxford", "ethz", "tsinghua", "mit", "cmu",
    "berkeley",
]


@dataclass(frozen=True)
class INEXConfig:
    """Generator knobs, mapped from Table 1 (see ExperimentParams)."""

    scale: int = 1  # data size multiplier (paper: x100MB)
    journals_per_scale: int = 2
    articles_per_journal: int = 16
    author_pool_base: int = 24  # authors grow sub-linearly with scale
    authors_per_scale: int = 6
    sections_per_article: int = 3
    paragraphs_per_section: int = 5
    words_per_paragraph: int = 12
    bib_entries_per_article: int = 8
    element_size: int = 1  # view-element size multiplier (X1 experiment)
    join_selectivity: float = 1.0  # fraction of articles joining an author
    seed: int = 7

    @property
    def journal_count(self) -> int:
        return self.journals_per_scale * self.scale

    @property
    def article_count(self) -> int:
        return self.journal_count * self.articles_per_journal

    @property
    def author_count(self) -> int:
        return self.author_pool_base + self.authors_per_scale * self.scale


class _Generator:
    def __init__(self, config: INEXConfig):
        self.config = config
        self.rng = random.Random(config.seed)
        self.author_names = self._author_names()
        self.fnos: list[str] = []

    # -- vocabulary -----------------------------------------------------------

    def _author_names(self) -> list[str]:
        names: list[str] = []
        seen: set[str] = set()
        while len(names) < self.config.author_count:
            name = (
                f"{self.rng.choice(_FIRST_NAMES)} "
                f"{self.rng.choice(_LAST_NAMES)}{len(names)}"
            )
            if name not in seen:
                seen.add(name)
                names.append(name)
        return names

    def _text(self, words: int) -> str:
        """A paragraph: filler words plus probabilistically planted
        selectivity-class keywords."""
        tokens = self.rng.choices(_FILLER_WORDS, k=words)
        for cls, probability in _PLANT_PROBABILITY.items():
            if self.rng.random() < probability:
                tokens.append(self.rng.choice(_PLANT_WORDS[cls]))
        self.rng.shuffle(tokens)
        return " ".join(tokens)

    # -- documents ---------------------------------------------------------------

    def articles_doc(self) -> XMLNode:
        config = self.config
        root = XMLNode("books")
        join_cut = config.join_selectivity
        article_number = 0
        for journal_number in range(config.journal_count):
            journal = root.make_child("journal")
            journal.make_child(
                "title", f"journal of {self.rng.choice(_FILLER_WORDS)} "
                f"systems {journal_number}"
            )
            for _ in range(config.articles_per_journal):
                article_number += 1
                fno = f"fn{article_number:05d}"
                self.fnos.append(fno)
                article = journal.make_child("article")
                article.make_child("fno", fno)
                if self.rng.random() < 0.7:
                    article.make_child("doi", f"10.1234/{fno}")
                fm = article.make_child("fm")
                if self.rng.random() < 0.5:
                    fm.make_child("hdr", self._text(4))
                if self.rng.random() < join_cut:
                    author = self.rng.choice(self.author_names)
                else:
                    author = f"external author {article_number}"
                fm.make_child("au", author)
                fm.make_child("atl", self._text(5))
                fm.make_child("kwd", self._text(4))
                fm.make_child("yr", str(self.rng.randint(1975, 2005)))
                bdy = article.make_child("bdy")
                sections = config.sections_per_article * config.element_size
                for section_number in range(sections):
                    sec = bdy.make_child("sec")
                    sec.make_child("st", self._text(3))
                    for _ in range(config.paragraphs_per_section):
                        sec.make_child("p", self._text(config.words_per_paragraph))
                # Bibliography: INEX articles carry reference lists whose
                # entries reuse the au/atl/yr tags.  These matter for the
                # system comparison: they lengthen the per-tag streams the
                # GTP baseline structural-joins over, while the path index
                # keeps them out of the fm/au, fm/yr lists entirely.
                bib = bdy.make_child("bib")
                for _ in range(config.bib_entries_per_article):
                    bb = bib.make_child("bb")
                    bb.make_child("au", self.rng.choice(self.author_names))
                    bb.make_child("atl", self._text(4))
                    bb.make_child("yr", str(self.rng.randint(1975, 2005)))
        return root

    def authors_doc(self) -> XMLNode:
        root = XMLNode("authors")
        group: XMLNode | None = None
        for index, name in enumerate(self.author_names):
            if index % 8 == 0:
                group = root.make_child("group")
                group.make_child(
                    "affiliation", self.rng.choice(_AFFILIATIONS)
                )
            assert group is not None
            author = group.make_child("author")
            author.make_child("name", name)
            author.make_child("bio", self._text(6))
        return root

    def _per_fno_doc(
        self, root_tag: str, item_tag: str, fields: list[tuple[str, int]]
    ) -> XMLNode:
        """A side document with one item per article fno (join chains)."""
        root = XMLNode(root_tag)
        for fno in self.fnos:
            item = root.make_child(item_tag)
            item.make_child("fno", fno)
            for field_tag, words in fields:
                item.make_child(field_tag, self._text(words))
        return root

    def reviews_doc(self) -> XMLNode:
        return self._per_fno_doc(
            "reviews", "review", [("rate", 1), ("comment", 8)]
        )

    def citations_doc(self) -> XMLNode:
        return self._per_fno_doc(
            "citations", "citation", [("label", 2), ("note", 6)]
        )

    def venues_doc(self) -> XMLNode:
        root = XMLNode("venues")
        for fno in self.fnos:
            venue = root.make_child("venue")
            venue.make_child("fno", fno)
            venue.make_child("city", self.rng.choice(_CITIES))
            venue.make_child("note", self._text(5))
        return root


def generate_inex_database(
    config: INEXConfig | None = None,
    include_side_documents: bool = True,
    **database_kwargs,
) -> XMLDatabase:
    """Generate and index the full synthetic collection.

    Documents: ``articles.xml``, ``authors.xml`` and (optionally, for the
    join-count sweeps) ``reviews.xml``, ``citations.xml``, ``venues.xml``.
    """
    config = config or INEXConfig()
    generator = _Generator(config)
    database = XMLDatabase(**database_kwargs)
    database.load_document("articles.xml", generator.articles_doc())
    database.load_document("authors.xml", generator.authors_doc())
    if include_side_documents:
        database.load_document("reviews.xml", generator.reviews_doc())
        database.load_document("citations.xml", generator.citations_doc())
        database.load_document("venues.xml", generator.venues_doc())
    return database
