"""The experimental parameter space (paper Table 1).

Every experiment varies one parameter and holds the rest at the paper's
defaults (bold in Table 1).  Data sizes are scale units rather than
hundreds of megabytes — the substrate is a pure-Python simulator and the
claims under test are shape claims (see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

# Keyword pairs per selectivity class (Table 1).  "Low selectivity" means
# frequent terms (long inverted lists), mirroring Section 5.2.3's reading.
KEYWORDS_BY_SELECTIVITY: dict[str, tuple[str, ...]] = {
    "low": ("ieee", "computing"),
    "medium": ("thomas", "control"),
    "high": ("moore", "burnett"),
}


@dataclass(frozen=True)
class ExperimentParams:
    """One experiment configuration (a row of Table 1 with defaults)."""

    data_scale: int = 3  # paper default: 300MB of 100..500MB
    num_keywords: int = 2
    keyword_selectivity: str = "medium"  # low | medium | high
    num_joins: int = 1  # 0..4 value joins in the view
    join_selectivity: float = 1.0  # 1X, 0.5X, 0.2X, 0.1X
    nesting_level: int = 2  # 1..4 nested FLWOR levels
    top_k: int = 10  # 1, 10, 20, 30, 40
    element_size: int = 1  # 1X..5X average view-element size
    seed: int = 7

    def with_(self, **kwargs) -> "ExperimentParams":
        """A copy with some parameters replaced (sweep helper)."""
        return replace(self, **kwargs)

    def keywords(self) -> tuple[str, ...]:
        """The query keywords: cycle the selectivity class's pair.

        ``num_keywords`` beyond the pair reuses neighbouring classes so
        that 1..5 keywords are always available (the paper does not list
        its exact per-count keyword sets).
        """
        order = ["medium", "low", "high"]
        order.remove(self.keyword_selectivity)
        pool = list(KEYWORDS_BY_SELECTIVITY[self.keyword_selectivity])
        for cls in order:
            pool.extend(KEYWORDS_BY_SELECTIVITY[cls])
        return tuple(pool[: self.num_keywords])


# Table 1 verbatim: parameter -> swept values (defaults marked by the
# ExperimentParams defaults above).
PARAMETER_TABLE: dict[str, list] = {
    "data_scale": [1, 2, 3, 4, 5],
    "num_keywords": [1, 2, 3, 4, 5],
    "keyword_selectivity": ["low", "medium", "high"],
    "num_joins": [0, 1, 2, 3, 4],
    "join_selectivity": [1.0, 0.5, 0.2, 0.1],
    "nesting_level": [1, 2, 3, 4],
    "top_k": [1, 10, 20, 30, 40],
    "element_size": [1, 2, 3, 4, 5],
}
