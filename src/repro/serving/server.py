"""The asyncio serving front end over :class:`KeywordSearchEngine`.

The engine itself is synchronous and CPU-bound; what a multi-tenant
deployment needs in front of it is *admission control and latency
shaping*, not more query machinery:

* a **bounded request queue** — beyond it, requests are shed with a
  typed :class:`Overloaded` instead of queueing into a latency cliff;
* **per-view inflight limits** — one hot view cannot occupy the whole
  queue (see :mod:`repro.serving.admission`);
* **shard-affine execution lanes** — each request is routed to the
  cache shards its ``(view, doc)`` pairs hash to (the same partitioning
  :class:`~repro.core.cache.QueryCache` uses), and a per-lane semaphore
  bounds concurrent execution per shard.  Requests that would contend
  on a shard's lock serialize in front of the cache, where they cost an
  ``await``, instead of inside it, where they cost a blocked thread;
* **startup pre-warming** — configured hot views get one
  ``build_skeleton`` per ``(view, doc)`` before traffic arrives, so
  first-contact keyword queries run the warm array-sweep path
  (:mod:`repro.serving.warmup`);
* **per-request observability** — every :class:`ServeResult` carries
  the engine's ``SearchOutcome`` (cache hits, phase timings,
  ``cache_stats``) plus queue/service/end-to-end latencies, and each
  served request's cache outcome feeds the admission controller's
  cold-view shedding signal.

Engine calls run in a thread pool (``run_in_executor``); the engine's
entry points are thread-safe (sharded cache locks, thread-local
timings), which PR 2's stress tests and the concurrent differential
suite lock down.  All server methods must be called from the event loop
that ``start()`` ran on.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor
from contextlib import AsyncExitStack
from dataclasses import dataclass, field
from functools import partial
from typing import Any, Optional, Sequence, Union

from repro.core.engine import KeywordSearchEngine, SearchOutcome, SearchResult, View
from repro.core.routing import ShardRouter
from repro.core.sharding import CorpusCoordinator
from repro.serving.admission import (
    AdmissionController,
    AdmissionLimits,
    Overloaded,
    REASON_SERVER_STOPPED,
)
from repro.serving.stats import ServingStats
from repro.serving.warmup import WarmupReport, execute_warmup, plan_warmup


@dataclass(frozen=True)
class ServerConfig:
    """The serving knobs (see README "Serving")."""

    #: Requests queued but not yet executing; beyond it: ``queue_full``.
    max_queue_depth: int = 64
    #: Queued + executing requests per view; beyond it: ``view_saturated``.
    max_inflight_per_view: int = 16
    #: Queued + executing requests per shard lane; ``None`` disables.
    #: Under a :class:`~repro.core.sharding.CorpusCoordinator` the lanes
    #: are shard executors, so this bounds each shard's admitted load.
    max_inflight_per_shard: Optional[int] = None
    #: Concurrent requests per cache-shard lane (1 = serialize a shard).
    shard_lane_width: int = 2
    #: Worker coroutines == executor threads executing engine calls.
    workers: int = 8
    #: Views pre-warmed during ``start()``, before traffic is accepted.
    warm_views: tuple[str, ...] = ()
    #: Opt-in cold-view load shedding under queue pressure.
    shed_cold_views: bool = False
    shed_queue_fraction: float = 0.5
    shed_miss_threshold: float = 0.75
    #: Lane count when the engine runs without a cache (no shards to
    #: mirror); with a cache, the cache's ``shard_count`` wins.
    fallback_shards: int = 8
    #: Sliding-window size for the latency recorders.
    latency_window: int = 2048

    def admission_limits(self) -> AdmissionLimits:
        return AdmissionLimits(
            max_queue_depth=self.max_queue_depth,
            max_inflight_per_view=self.max_inflight_per_view,
            max_inflight_per_shard=self.max_inflight_per_shard,
            shed_cold_views=self.shed_cold_views,
            shed_queue_fraction=self.shed_queue_fraction,
            shed_miss_threshold=self.shed_miss_threshold,
        )


@dataclass
class ServeResult:
    """One admitted-and-served request: results plus serving telemetry."""

    outcome: SearchOutcome
    view: str
    keywords: tuple[str, ...]
    #: Cache-shard lanes the request executed under (sorted).
    lanes: tuple[int, ...]
    #: Seconds spent queued + waiting for lanes, before execution.
    queue_wait: float
    #: Seconds inside the engine (thread-pool execution).
    service_time: float
    #: End-to-end seconds from admission to completion.
    latency: float

    @property
    def results(self) -> list[SearchResult]:
        return self.outcome.results

    @property
    def cache_hits(self) -> dict[str, str]:
        """Per-document deepest cache tier hit (``SearchOutcome.cache_hits``)."""
        return self.outcome.cache_hits

    @property
    def cache_stats(self) -> dict[str, Any]:
        """The engine cache's consistent counter snapshot for this
        request — the signal load-shedding policies consume."""
        return self.outcome.cache_stats


@dataclass
class _Request:
    """A queued unit of work (internal)."""

    view_name: str
    keywords: tuple[str, ...]
    top_k: Optional[int]
    conjunctive: bool
    materialize: bool
    lanes: tuple[int, ...]
    future: "asyncio.Future[ServeResult]"
    admitted_at: float = field(default_factory=time.perf_counter)


class SearchServer:
    """Bounded async serving over one engine (``async with`` friendly).

    Usage::

        engine = KeywordSearchEngine(database)
        engine.define_view("bookrevs", VIEW_TEXT)
        config = ServerConfig(warm_views=("bookrevs",))
        async with SearchServer(engine, config) as server:
            response = await server.search("bookrevs", ("xml", "search"))
            if isinstance(response, Overloaded):
                ...  # shed: back off or fail over
            else:
                response.results  # ranked SearchResults
    """

    def __init__(
        self,
        engine: Union[KeywordSearchEngine, CorpusCoordinator],
        config: Optional[ServerConfig] = None,
        stats: Optional[ServingStats] = None,
    ):
        self.engine = engine
        self.config = config or ServerConfig()
        self.stats = stats or ServingStats(window=self.config.latency_window)
        self.admission = AdmissionController(self.config.admission_limits())
        # Lanes mirror whatever partitions the engine's own execution:
        # shard executors under a coordinator, cache shards under a
        # single cached engine, and the shared router's keyspace when
        # neither exists (so the cacheless fallback still agrees with
        # every other layer about where a (view, doc) pair lives).
        cache = getattr(engine, "cache", None)
        if isinstance(engine, CorpusCoordinator):
            self.lane_count = engine.shard_count
        elif cache is not None:
            self.lane_count = cache.shard_count
        else:
            self.lane_count = self.config.fallback_shards
        self._fallback_router = ShardRouter(self.lane_count)
        self.startup_warmup: Optional[WarmupReport] = None
        self._running = False
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._executor: Optional[ThreadPoolExecutor] = None
        self._queue: Optional["asyncio.Queue[_Request]"] = None
        self._lanes: list[asyncio.Semaphore] = []
        self._workers: list["asyncio.Task[None]"] = []

    # -- lifecycle -----------------------------------------------------------

    @property
    def running(self) -> bool:
        """Whether the server is accepting traffic (the health signal
        the HTTP front end reports)."""
        return self._running

    async def __aenter__(self) -> "SearchServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    async def start(self) -> None:
        """Bind to the running loop, pre-warm hot views, accept traffic."""
        if self._running:
            raise RuntimeError("server already started")
        self._loop = asyncio.get_running_loop()
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.workers,
            thread_name_prefix="repro-serving",
        )
        self._queue = asyncio.Queue(maxsize=self.config.max_queue_depth)
        self._lanes = [
            asyncio.Semaphore(self.config.shard_lane_width)
            for _ in range(self.lane_count)
        ]
        try:
            if self.config.warm_views:
                self.startup_warmup = await self.warm_up(
                    *self.config.warm_views
                )
            self._workers = [
                self._loop.create_task(
                    self._worker_loop(), name=f"repro-serving-worker-{index}"
                )
                for index in range(self.config.workers)
            ]
        except BaseException:
            # A failed warm-up (typo'd hot view, view gone stale before
            # startup) must not leak the executor's non-daemon threads
            # or leave a half-initialized server behind a passing
            # `_running` guard on retry.
            self._executor.shutdown(wait=True)
            self._executor = None
            self._queue = None
            self._lanes = []
            raise
        self._running = True

    async def stop(self, drain: bool = True) -> None:
        """Stop accepting; with ``drain``, finish everything queued first."""
        if self._queue is None:
            return
        self._running = False
        if drain:
            await self._queue.join()
        for worker in self._workers:
            worker.cancel()
        await asyncio.gather(*self._workers, return_exceptions=True)
        self._workers = []
        # drain=False (or a worker dying mid-cancel) can leave queued
        # requests behind: shed them so no caller awaits forever.
        while not self._queue.empty():
            request = self._queue.get_nowait()
            self.admission.release(request.view_name, request.lanes)
            self.stats.record_rejected(REASON_SERVER_STOPPED)
            if not request.future.done():
                request.future.set_result(
                    self._stopped_response(request.view_name)
                )
            self._queue.task_done()
        if self._executor is not None:
            # Waiting synchronously would freeze the event loop until
            # every in-flight engine call returns (with drain=False
            # those are exactly the calls nobody is waiting for); park
            # the blocking join on the loop's default executor instead.
            await asyncio.get_running_loop().run_in_executor(
                None, partial(self._executor.shutdown, wait=True)
            )

    # -- serving -------------------------------------------------------------

    async def search(
        self,
        view: Union[View, str],
        keywords: Sequence[str],
        top_k: Optional[int] = 10,
        conjunctive: bool = True,
        materialize: bool = False,
    ) -> Union[ServeResult, Overloaded]:
        """Admit, queue, execute; or shed with a typed ``Overloaded``.

        Engine-level errors (unknown view, stale view, a document
        dropped mid-flight) raise exactly as they do on the synchronous
        API; ``Overloaded`` is reserved for load decisions.  With
        ``materialize=True`` winners are expanded inside the thread
        pool, so reading ``to_xml()`` afterwards never blocks the loop.
        """
        view_name = view if isinstance(view, str) else view.name
        resolved = self.engine.get_view(view_name)  # raises on unknown
        self.stats.record_submitted()
        if not self._running or self._queue is None:
            self.stats.record_rejected(REASON_SERVER_STOPPED)
            return self._stopped_response(view_name)
        # Lanes are resolved *before* admission so the per-shard inflight
        # bound can see which shards this request would occupy.
        lanes = self.route(resolved)
        decision = self.admission.try_admit(
            view_name, self._queue.qsize(), shards=lanes
        )
        if decision is not None:
            self.stats.record_rejected(decision.reason)
            return decision
        assert self._loop is not None
        request = _Request(
            view_name=view_name,
            keywords=tuple(keywords),
            top_k=top_k,
            conjunctive=conjunctive,
            materialize=materialize,
            lanes=lanes,
            future=self._loop.create_future(),
        )
        # Cannot overflow: admission just saw qsize() < max_queue_depth
        # and nothing awaited since (single-threaded loop).
        self._queue.put_nowait(request)
        return await request.future

    async def warm_up(self, *view_names: str) -> WarmupReport:
        """Pre-warm views now (startup calls this for ``warm_views``).

        One ``build_skeleton`` per ``(view, doc)`` plus the
        keyword-independent evaluation, executed in the thread pool;
        after it returns, first-contact keyword queries against these
        views hit the skeleton tier (or better) and perform zero
        path-index probes.
        """
        if self._loop is None or self._executor is None:
            raise RuntimeError("server not started")
        targets = plan_warmup(self.engine, view_names)
        report = await self._loop.run_in_executor(
            self._executor, execute_warmup, self.engine, targets
        )
        self.stats.record_warmed(len(targets))
        # A just-warmed view serves skeleton-tier traffic: reset its
        # coldness score so stale miss history does not keep shedding it
        # after the operator explicitly warmed it.
        for view_name in dict.fromkeys(target.view for target in targets):
            self.admission.note_warmed(view_name)
        return report

    # -- routing -------------------------------------------------------------

    def route(self, view: Union[View, str]) -> tuple[int, ...]:
        """The sorted lanes a view's requests execute under.

        Under a :class:`CorpusCoordinator` the lanes *are* the shard
        executors holding the view's fragments — a request serializes in
        front of exactly the shards its scatter will touch.  Under a
        single cached engine they mirror ``QueryCache.shard_for`` per
        ``(view, doc)`` pair, so execution concurrency is partitioned
        exactly like the cache.  The cacheless fallback hashes the same
        pairs through the shared :class:`ShardRouter` — the same
        placement a cache of ``lane_count`` shards would compute, never
        a third opinion.
        """
        if isinstance(view, str):
            view = self.engine.get_view(view)
        if isinstance(self.engine, CorpusCoordinator):
            return self.engine.shards_for_view(view.name)
        cache = self.engine.cache
        if cache is not None:
            lanes = {
                cache.shard_for(view.name, doc_name)
                for doc_name in view.document_names
            }
        else:
            lanes = {
                self._fallback_router.route(view.name, doc_name)
                for doc_name in view.document_names
            }
        return tuple(sorted(lanes))

    # -- internals -----------------------------------------------------------

    def _stopped_response(self, view_name: str) -> Overloaded:
        return Overloaded(
            reason=REASON_SERVER_STOPPED,
            view=view_name,
            queue_depth=self._queue.qsize() if self._queue is not None else 0,
            inflight=self.admission.inflight(view_name),
            limit=0,
        )

    async def _worker_loop(self) -> None:
        assert self._queue is not None
        while True:
            request = await self._queue.get()
            try:
                await self._serve(request)
            finally:
                self._queue.task_done()

    async def _serve(self, request: _Request) -> None:
        assert self._loop is not None and self._executor is not None
        try:
            async with AsyncExitStack() as lanes_held:
                # Sorted acquisition order (route() sorts): two multi-doc
                # requests can never deadlock on overlapping lane sets.
                for lane in request.lanes:
                    await lanes_held.enter_async_context(self._lanes[lane])
                queue_wait = time.perf_counter() - request.admitted_at
                started = time.perf_counter()
                outcome = await self._loop.run_in_executor(
                    self._executor,
                    partial(
                        self.engine.search_detailed,
                        request.view_name,
                        request.keywords,
                        top_k=request.top_k,
                        conjunctive=request.conjunctive,
                        materialize=request.materialize,
                    ),
                )
                service_time = time.perf_counter() - started
        except BaseException as exc:
            self.admission.release(request.view_name, request.lanes)
            if isinstance(exc, asyncio.CancelledError):
                # The worker was cancelled (stop(drain=False)), not the
                # request: the caller gets the same typed stopped
                # response a still-queued request would, never a raw
                # CancelledError it cannot tell apart from its own
                # cancellation.
                self.stats.record_rejected(REASON_SERVER_STOPPED)
                if not request.future.done():
                    request.future.set_result(
                        self._stopped_response(request.view_name)
                    )
                raise
            self.stats.record_failed()
            if not request.future.done():
                request.future.set_exception(exc)
            return
        latency = time.perf_counter() - request.admitted_at
        self.admission.release(request.view_name, request.lanes)
        self.admission.observe(request.view_name, outcome.cache_hits)
        self.stats.record_completed(
            queue_wait,
            service_time,
            latency,
            outcome.cache_hits,
            degraded=getattr(outcome, "degraded", False),
        )
        if not request.future.done():
            request.future.set_result(
                ServeResult(
                    outcome=outcome,
                    view=request.view_name,
                    keywords=request.keywords,
                    lanes=request.lanes,
                    queue_wait=queue_wait,
                    service_time=service_time,
                    latency=latency,
                )
            )

    # -- diagnostics ---------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """Server + admission + engine-cache state, one consistent read."""
        return {
            "running": self._running,
            "queue_depth": self._queue.qsize() if self._queue else 0,
            "lane_count": self.lane_count,
            "requests": self.stats.snapshot(),
            "admission": self.admission.snapshot(),
            "cache": (
                self.engine.cache.stats()
                if getattr(self.engine, "cache", None) is not None
                else {}
            ),
            "snapshot_store": (
                self.engine.snapshot_store.stats()
                if getattr(self.engine, "snapshot_store", None) is not None
                else {}
            ),
            "health": (
                self.engine.health_snapshot()
                if callable(getattr(self.engine, "health_snapshot", None))
                else {}
            ),
        }
