"""Async serving layer: admission control, shard-affine execution,
hot-view pre-warming and request-level stats over the search engine.

Public surface::

    from repro.serving import (
        SearchServer, ServerConfig, ServeResult,     # the front end
        Overloaded, AdmissionController, AdmissionLimits,  # admission
        WarmupReport, WarmupTarget, plan_warmup, execute_warmup,
        ServingStats, LatencyRecorder,
        SearchAPI, HTTPServingEndpoint, BackgroundHTTPServing,  # wire
        OVERLOAD_STATUS, ENGINE_ERROR_STATUS,
    )
"""

from repro.serving.admission import (
    REASON_COLD_VIEW_SHED,
    REASON_QUEUE_FULL,
    REASON_SERVER_STOPPED,
    REASON_SHARD_SATURATED,
    REASON_VIEW_SATURATED,
    AdmissionController,
    AdmissionLimits,
    Overloaded,
)
from repro.serving.http import (
    BackgroundHTTPServing,
    ENGINE_ERROR_STATUS,
    HTTPServingEndpoint,
    OVERLOAD_STATUS,
    SearchAPI,
)
from repro.serving.server import SearchServer, ServeResult, ServerConfig
from repro.serving.stats import LatencyRecorder, ServingStats
from repro.serving.warmup import (
    WarmupReport,
    WarmupTarget,
    execute_warmup,
    plan_warmup,
)

__all__ = [
    "AdmissionController",
    "AdmissionLimits",
    "BackgroundHTTPServing",
    "ENGINE_ERROR_STATUS",
    "HTTPServingEndpoint",
    "LatencyRecorder",
    "OVERLOAD_STATUS",
    "Overloaded",
    "SearchAPI",
    "REASON_COLD_VIEW_SHED",
    "REASON_QUEUE_FULL",
    "REASON_SERVER_STOPPED",
    "REASON_SHARD_SATURATED",
    "REASON_VIEW_SATURATED",
    "SearchServer",
    "ServeResult",
    "ServerConfig",
    "ServingStats",
    "WarmupReport",
    "WarmupTarget",
    "execute_warmup",
    "plan_warmup",
]
