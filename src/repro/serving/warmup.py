"""Warm-up planning: pre-build hot views' cached state at startup.

A freshly started server answers its first queries cold — every one
pays path-index probes, the structural merge and a full view
evaluation.  For views known to be hot, that cost is better paid before
the server starts accepting traffic: one ``build_skeleton`` per
``(view, document)`` pair (plus the keyword-independent evaluation)
means every first-contact keyword query runs the warm array-sweep path.

``plan_warmup`` turns view names into explicit per-``(view, doc)``
targets — annotated with the cache shard each lands on, so operators
can see how warm state distributes over the cache partitioning — and
``execute_warmup`` runs the plan through the engine and reports what
was actually built versus restored versus already warm.

When the engine carries a persistent skeleton store
(:class:`repro.core.snapshot.SkeletonStore`), warming restores
skeletons snapshotted by an earlier process instead of rebuilding them
(reported per target as ``"restored"``), and snapshots whatever it does
build — a restarted fleet member warms from disk, not from path
probes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.core.engine import KeywordSearchEngine


@dataclass(frozen=True)
class WarmupTarget:
    """One ``(view, document)`` pair to pre-warm, with its cache shard."""

    view: str
    doc: str
    shard: Optional[int]


@dataclass
class WarmupReport:
    """What a warm-up pass did, per target."""

    targets: list[WarmupTarget] = field(default_factory=list)
    #: ``(view, doc) -> "built"`` (skeleton constructed by this pass),
    #: ``"restored"`` (loaded from the persistent snapshot store —
    #: warm-from-snapshot, no path probes, no merge pass), ``"warm"``
    #: (a prior query or warm-up already filled the in-memory tier) or
    #: ``"failed"`` (the view raised mid-warm-up — dropped or redefined
    #: between planning and execution; the server starts without it).
    results: dict[tuple[str, str], str] = field(default_factory=dict)
    #: ``view -> error string`` for every view that failed to warm.
    errors: dict[str, str] = field(default_factory=dict)
    duration: float = 0.0
    #: Stale snapshot files reclaimed after warming (snapshots no live
    #: ``(document, view)`` coordinate can restore any more).
    pruned: int = 0
    #: Networked snapshot tier activity during this pass (all zero when
    #: the engine's store is purely local): snapshots fetched from a
    #: peer, fetch attempts that failed after retries, and misses that
    #: fell back to the local cold build.
    fetched: int = 0
    fetch_failed: int = 0
    fell_back: int = 0
    #: Concurrent same-key misses coalesced into one fetch (the
    #: networked store's single-flight guard) during this pass.
    coalesced: int = 0
    #: Shards quarantined (breaker open) when the pass finished — only
    #: populated when the engine is a coordinator with fleet health.
    quarantined_shards: tuple[int, ...] = ()

    @property
    def built_count(self) -> int:
        return sum(1 for state in self.results.values() if state == "built")

    @property
    def restored_count(self) -> int:
        return sum(
            1 for state in self.results.values() if state == "restored"
        )

    @property
    def warm_count(self) -> int:
        return sum(1 for state in self.results.values() if state == "warm")

    @property
    def failed_count(self) -> int:
        return sum(1 for state in self.results.values() if state == "failed")

    def as_dict(self) -> dict:
        return {
            "targets": [
                {"view": t.view, "doc": t.doc, "shard": t.shard}
                for t in self.targets
            ],
            "built": self.built_count,
            "restored": self.restored_count,
            "already_warm": self.warm_count,
            "failed": self.failed_count,
            "errors": dict(self.errors),
            "duration": self.duration,
            "pruned": self.pruned,
            "fetched": self.fetched,
            "fetch_failed": self.fetch_failed,
            "fell_back": self.fell_back,
            "coalesced": self.coalesced,
            "quarantined_shards": list(self.quarantined_shards),
        }


def plan_warmup(
    engine: "KeywordSearchEngine", view_names: Sequence[str]
) -> list[WarmupTarget]:
    """Expand view names into deduplicated ``(view, doc)`` targets.

    Unknown view names raise ``ViewDefinitionError`` immediately —
    a warm-up plan that silently skips a typo'd hot view would defeat
    its purpose.  Targets keep the caller's view order (then document
    order within a view), matching the order ``execute_warmup`` warms.

    ``engine`` may also be a :class:`~repro.core.sharding.
    CorpusCoordinator` (same ``get_view``/``warm_view`` surface): then
    each target's ``shard`` is the shard *executor* holding the
    document — the plan shows how warm-up work distributes over the
    fleet, and warming runs per shard.  A plain engine annotates the
    cache shard instead, or ``None`` without a cache.
    """
    shard_of = getattr(engine, "shard_of_document", None)
    cache = getattr(engine, "cache", None)
    targets: list[WarmupTarget] = []
    seen: set[str] = set()
    for name in view_names:
        if name in seen:
            continue
        seen.add(name)
        view = engine.get_view(name)
        for doc_name in view.document_names:
            if shard_of is not None:
                shard = shard_of(doc_name)
            elif cache is not None:
                shard = cache.shard_for(name, doc_name)
            else:
                shard = None
            targets.append(WarmupTarget(view=name, doc=doc_name, shard=shard))
    return targets


def execute_warmup(
    engine: "KeywordSearchEngine", targets: Sequence[WarmupTarget]
) -> WarmupReport:
    """Warm every target through ``engine.warm_view``; report per pair.

    Synchronous and engine-bound — the server runs it in its thread
    pool so startup warming does not block the event loop.

    Per-view failures are tolerated: a view dropped or redefined between
    ``plan_warmup`` and execution marks its targets ``"failed"`` (with
    the error under :attr:`WarmupReport.errors`) and warming continues
    with the remaining views — a stale plan entry must not keep the
    whole server from starting.  When the engine's snapshot store has a
    networked tier, the pass also records how many snapshots it fetched
    from the peer versus failed or fell back (delta of the store's
    ``net_stats`` across the pass).
    """
    from repro.errors import ReproError

    report = WarmupReport(targets=list(targets))
    start = time.perf_counter()
    net_stats = getattr(
        getattr(engine, "snapshot_store", None), "net_stats", None
    )
    net_before = net_stats() if callable(net_stats) else None
    docs_of: dict[str, list[str]] = {}
    for target in targets:
        docs_of.setdefault(target.view, []).append(target.doc)
    for view_name in docs_of:
        try:
            cache_hits = engine.warm_view(view_name)
        except ReproError as exc:
            for doc_name in docs_of[view_name]:
                report.results[(view_name, doc_name)] = "failed"
            report.errors[view_name] = f"{type(exc).__name__}: {exc}"
            continue
        for doc_name, hit in cache_hits.items():
            if hit == "miss":
                state = "built"
            elif hit == "snapshot":
                state = "restored"
            else:
                state = "warm"
            report.results[(view_name, doc_name)] = state
    if net_before is not None:
        net_after = net_stats()
        report.fetched = net_after["fetched"] - net_before["fetched"]
        report.fetch_failed = (
            net_after["fetch_failed"] - net_before["fetch_failed"]
        )
        report.fell_back = net_after["fell_back"] - net_before["fell_back"]
        report.coalesced = net_after.get("coalesced", 0) - net_before.get(
            "coalesced", 0
        )
    health = getattr(engine, "health_snapshot", None)
    if callable(health):
        # A coordinator-backed server surfaces which shards sat out the
        # pass in quarantine — their views warmed fail-soft above.
        report.quarantined_shards = tuple(health()["quarantined"])
    # Every warm view just re-saved its snapshots under the current
    # fingerprints, so anything unreachable in the store is stale —
    # reclaim it while we hold the startup window.
    prune = getattr(engine, "prune_snapshots", None)
    if prune is not None:
        report.pruned = prune()
    report.duration = time.perf_counter() - start
    return report
