"""The HTTP wire front end over :class:`SearchServer`.

Three layers, all dependency-free:

* :class:`SearchAPI` — an ASGI 3.0 application speaking JSON.  Routes:

  =====================  ======================================================
  ``POST /search``       Ranked keyword search with cursor pagination.
  ``GET /health``        Liveness: 200 while accepting traffic, 503 stopped.
  ``GET /warmth``        The startup :class:`WarmupReport` (what is pre-warm).
  ``GET /stats``         The server's consistent counter snapshot.
  ``GET /snapshots/<e>`` One skeleton snapshot's v2 wire bytes, verbatim —
                         the serving side of the fleet peer protocol
                         (:mod:`repro.core.snapshot_net`).
  =====================  ======================================================

  Every error is typed: each :class:`Overloaded` admission reason and
  each engine error class maps to a documented status code and a JSON
  body ``{"error": {"code", "message", ...}}`` (see
  :data:`OVERLOAD_STATUS` / :data:`ENGINE_ERROR_STATUS`), so clients
  branch on machine-readable codes, never on message strings.

* :class:`HTTPServingEndpoint` — a minimal asyncio HTTP/1.1 bridge that
  serves any ASGI app on a local socket (``asyncio.start_server``; one
  request per connection, ``Connection: close``).  The container has no
  ASGI server installed, and the fleet path must not grow a dependency
  for what is a few dozen lines of framing.

* :class:`BackgroundHTTPServing` — a thread that owns an event loop
  running engine → server → API → endpoint, for synchronous callers
  (benchmarks, difftests, a peer process's ``__main__``).

Pagination is cursor-based: the response's ``page.next_cursor`` is an
opaque token encoding the next offset *and* a digest of the query it
belongs to — replaying it with different keywords/view is a 400, not a
silently wrong page.  Results are rendered deterministically
(``sort_keys`` + compact separators), so two fleet members serving the
same corpus produce byte-identical ``results``/``page`` sections — the
property the fleet difftest asserts.
"""

from __future__ import annotations

import asyncio
import base64
import binascii
import hashlib
import json
import re
import threading
from http.client import responses as _REASON_PHRASES
from typing import Any, Awaitable, Callable, Optional

from repro.core.faults import FaultInjector
from repro.errors import (
    CoordinatorClosedError,
    DocumentNotFoundError,
    InjectedFaultError,
    ReproError,
    ShardUnavailableError,
    ShardingError,
    StaleViewError,
    StorageError,
    UnsupportedQueryError,
    ViewDefinitionError,
    XQuerySyntaxError,
)
from repro.serving.admission import (
    Overloaded,
    REASON_COLD_VIEW_SHED,
    REASON_QUEUE_FULL,
    REASON_SERVER_STOPPED,
    REASON_SHARD_SATURATED,
    REASON_VIEW_SATURATED,
)
from repro.serving.server import SearchServer, ServeResult
from repro.xmlmodel.serializer import serialize

#: Admission rejections: queue-wide conditions are 503 (the replica is
#: the problem — fail over), per-view/per-shard saturation and cold-view
#: shedding are 429 (this traffic class is the problem — back off).
OVERLOAD_STATUS: dict[str, int] = {
    REASON_QUEUE_FULL: 503,
    REASON_VIEW_SATURATED: 429,
    REASON_SHARD_SATURATED: 429,
    REASON_COLD_VIEW_SHED: 429,
    REASON_SERVER_STOPPED: 503,
}

#: Engine errors, most-specific class first (``isinstance`` walks this
#: in order, so a subclass must precede its base): what went wrong →
#: (status, machine-readable code).
ENGINE_ERROR_STATUS: tuple[tuple[type, int, str], ...] = (
    (StaleViewError, 410, "stale_view"),
    (ViewDefinitionError, 404, "unknown_view"),
    (UnsupportedQueryError, 400, "unsupported_query"),
    (XQuerySyntaxError, 400, "query_syntax"),
    (DocumentNotFoundError, 404, "document_not_found"),
    (StorageError, 500, "storage_error"),
    (ShardUnavailableError, 503, "shards_unavailable"),
    (ShardingError, 500, "sharding_error"),
    (CoordinatorClosedError, 503, "coordinator_closed"),
    (InjectedFaultError, 500, "injected_fault"),
    (ReproError, 500, "engine_error"),
)

_SNAPSHOT_NAME = re.compile(r"^([0-9a-f]{1,32})-([0-9a-f]{1,32})\.pdts$")

_MAX_BODY_BYTES = 1 << 20  # requests are small JSON; 1 MiB is generous

_JSON_COMPACT = {"sort_keys": True, "separators": (",", ":")}


def _dump(payload: Any) -> bytes:
    """Deterministic JSON bytes — the fleet difftest compares these."""
    return json.dumps(payload, **_JSON_COMPACT).encode("utf-8")


class _RequestTooLarge(ValueError):
    """A request (headers or framed body) exceeded the endpoint's limit."""


class _HTTPReply(Exception):
    """Internal control flow: unwind to one typed JSON response."""

    def __init__(self, status: int, payload: dict):
        super().__init__(status)
        self.status = status
        self.payload = payload


def _error_reply(status: int, code: str, message: str, **extra) -> _HTTPReply:
    error = {"code": code, "message": message}
    error.update(extra)
    return _HTTPReply(status, {"error": error})


def _query_tag(view: str, keywords: tuple, conjunctive: bool, size: int) -> str:
    """Digest binding a cursor to the query that minted it."""
    identity = _dump(
        {"c": conjunctive, "k": list(keywords), "s": size, "v": view}
    )
    return hashlib.sha256(identity).hexdigest()[:16]


def encode_cursor(offset: int, tag: str) -> str:
    token = _dump({"o": offset, "q": tag})
    return base64.urlsafe_b64encode(token).decode("ascii")


def decode_cursor(cursor: str, tag: str) -> int:
    """The offset a cursor carries; raises 400 on anything off.

    Malformed base64/JSON, a non-dict, a bad offset, and a cursor
    minted for a *different* query (tag mismatch) are all rejected the
    same way — an opaque token the client altered or misapplied.
    """
    bad = _error_reply(400, "bad_cursor", "cursor is not valid for this query")
    try:
        token = json.loads(base64.urlsafe_b64decode(cursor.encode("ascii")))
    except (ValueError, binascii.Error, UnicodeDecodeError):
        raise bad from None
    if not isinstance(token, dict):
        raise bad
    offset = token.get("o")
    if not isinstance(offset, int) or isinstance(offset, bool) or offset < 0:
        raise bad
    if token.get("q") != tag:
        raise bad
    return offset


class SearchAPI:
    """ASGI 3.0 application over one :class:`SearchServer`.

    With ``manage_server=True`` the ASGI lifespan protocol starts and
    stops the server (the deployment shape where the ASGI host owns the
    process); by default the caller manages the server's lifecycle and
    the app only serves.
    """

    def __init__(self, server: SearchServer, manage_server: bool = False):
        self.server = server
        self.manage_server = manage_server
        #: Results returned per page when the request does not say.
        self.default_page_size = 10
        self.max_page_size = 100

    async def __call__(self, scope, receive, send) -> None:
        if scope["type"] == "lifespan":
            await self._lifespan(receive, send)
            return
        if scope["type"] != "http":  # pragma: no cover - ws etc.
            raise RuntimeError(f"unsupported ASGI scope {scope['type']!r}")
        try:
            reply = await self._dispatch(scope, receive)
        except _HTTPReply as early:
            reply = early
        headers = [(b"content-type", b"application/json")]
        if reply.status in (429, 503):
            headers.append((b"retry-after", b"1"))
        body = reply.payload
        if isinstance(body, (bytes, bytearray)):
            headers[0] = (b"content-type", b"application/octet-stream")
            raw = bytes(body)
        else:
            raw = _dump(body)
        await send(
            {
                "type": "http.response.start",
                "status": reply.status,
                "headers": headers,
            }
        )
        await send({"type": "http.response.body", "body": raw})

    # -- routing -------------------------------------------------------------

    async def _dispatch(self, scope, receive) -> _HTTPReply:
        method = scope["method"].upper()
        path = scope["path"]
        if path == "/search":
            if method != "POST":
                raise _error_reply(405, "method_not_allowed", "POST only")
            request = await self._read_json(receive)
            return await self._search(request)
        if method != "GET":
            raise _error_reply(405, "method_not_allowed", "GET only")
        if path == "/health":
            return self._health()
        if path == "/warmth":
            return self._warmth()
        if path == "/stats":
            return _HTTPReply(200, self.server.snapshot())
        if path.startswith("/snapshots/"):
            return self._snapshot_bytes(path[len("/snapshots/"):])
        raise _error_reply(404, "not_found", f"no route for {path!r}")

    async def _read_json(self, receive) -> dict:
        chunks: list[bytes] = []
        received = 0
        while True:
            message = await receive()
            if message["type"] == "http.disconnect":
                raise _error_reply(400, "bad_request", "client disconnected")
            chunks.append(message.get("body", b""))
            received += len(chunks[-1])
            if received > _MAX_BODY_BYTES:
                raise _error_reply(413, "payload_too_large", "request too large")
            if not message.get("more_body"):
                break
        try:
            request = json.loads(b"".join(chunks) or b"null")
        except ValueError:
            raise _error_reply(400, "bad_request", "body is not valid JSON")
        if not isinstance(request, dict):
            raise _error_reply(400, "bad_request", "body must be a JSON object")
        return request

    # -- handlers ------------------------------------------------------------

    def _health(self) -> _HTTPReply:
        """Liveness plus fleet health.

        A plain engine keeps the historical ``{"status", "running"}``
        shape.  A coordinator-backed server adds a ``shards`` section
        from :class:`~repro.core.health.FleetHealth`: 200 with status
        ``"ok"`` while every shard serves, 200 ``"degraded"`` while some
        are quarantined but at least one still serves (the replica can
        answer, possibly partially), 503 ``"unavailable"`` when no
        shard can serve at all — indistinguishable from down, so load
        balancers should fail over.
        """
        running = self.server.running
        if not running:
            return _HTTPReply(503, {"status": "stopped", "running": False})
        health = getattr(self.server.engine, "health_snapshot", None)
        if not callable(health):
            return _HTTPReply(200, {"status": "ok", "running": True})
        snapshot = health()
        quarantined = sorted(int(s) for s in snapshot["quarantined"])
        serving = snapshot["serving"]
        total = len(snapshot["shards"])
        if serving == 0:
            status, code = "unavailable", 503
        elif quarantined:
            status, code = "degraded", 200
        else:
            status, code = "ok", 200
        return _HTTPReply(
            code,
            {
                "status": status,
                "running": True,
                "shards": {
                    "total": total,
                    "serving": serving,
                    "quarantined": quarantined,
                },
            },
        )

    def _warmth(self) -> _HTTPReply:
        report = self.server.startup_warmup
        if report is None:
            return _HTTPReply(200, {"warmed": False})
        return _HTTPReply(200, {"warmed": True, "report": report.as_dict()})

    def _snapshot_bytes(self, name: str) -> _HTTPReply:
        """The peer protocol: stored wire bytes, verbatim, or 404.

        The entry name *is* the content key (``<qpt_hash[:32]>-
        <doc_fingerprint[:32]>.pdts``); anything not shaped like one is
        a 404 without touching the filesystem — this route can never be
        steered at arbitrary paths.
        """
        match = _SNAPSHOT_NAME.match(name)
        store = getattr(self.server.engine, "snapshot_store", None)
        if match is None or store is None:
            raise _error_reply(404, "snapshot_not_found", f"no snapshot {name!r}")
        qpt_hash, doc_fingerprint = match.group(1), match.group(2)
        payload = store.read_payload(doc_fingerprint, qpt_hash)
        if payload is None:
            raise _error_reply(404, "snapshot_not_found", f"no snapshot {name!r}")
        return _HTTPReply(200, payload)

    async def _search(self, request: dict) -> _HTTPReply:
        view = request.get("view")
        keywords = request.get("keywords")
        if not isinstance(view, str) or not view:
            raise _error_reply(400, "bad_request", "'view' must be a string")
        if (
            not isinstance(keywords, list)
            or not keywords
            or not all(isinstance(k, str) for k in keywords)
        ):
            raise _error_reply(
                400, "bad_request", "'keywords' must be a list of strings"
            )
        conjunctive = request.get("conjunctive", True)
        if not isinstance(conjunctive, bool):
            raise _error_reply(400, "bad_request", "'conjunctive' must be a bool")
        page_size = request.get("page_size", self.default_page_size)
        if (
            not isinstance(page_size, int)
            or isinstance(page_size, bool)
            or not 1 <= page_size <= self.max_page_size
        ):
            raise _error_reply(
                400,
                "bad_request",
                f"'page_size' must be an int in [1, {self.max_page_size}]",
            )
        tag = _query_tag(view, tuple(keywords), conjunctive, page_size)
        cursor = request.get("cursor")
        offset = 0
        if cursor is not None:
            if not isinstance(cursor, str):
                raise _error_reply(400, "bad_cursor", "'cursor' must be a string")
            offset = decode_cursor(cursor, tag)
        try:
            served = await self.server.search(
                view,
                tuple(keywords),
                top_k=offset + page_size,
                conjunctive=conjunctive,
            )
        except ReproError as exc:
            for error_type, status, code in ENGINE_ERROR_STATUS:
                if isinstance(exc, error_type):
                    raise _error_reply(status, code, str(exc)) from exc
            raise  # pragma: no cover - ENGINE_ERROR_STATUS ends at ReproError
        if isinstance(served, Overloaded):
            raise _error_reply(
                OVERLOAD_STATUS[served.reason],
                served.reason,
                served.describe(),
                view=served.view,
                queue_depth=served.queue_depth,
                inflight=served.inflight,
                limit=served.limit,
                shard=served.shard,
            )
        return _HTTPReply(200, self._page(served, tag, offset, page_size))

    def _page(
        self, served: ServeResult, tag: str, offset: int, page_size: int
    ) -> dict:
        """One deterministic page of an outcome ranked to offset+size."""
        outcome = served.outcome
        page = outcome.results[offset : offset + page_size]
        next_offset = offset + page_size
        has_more = next_offset < outcome.matching_count
        reply = {
            "view": served.view,
            "keywords": list(served.keywords),
            "results": [
                {
                    "rank": result.rank,
                    "score": result.score,
                    "index": result.scored.index,
                    "xml": serialize(result.pruned),
                }
                for result in page
            ],
            "page": {
                "offset": offset,
                "page_size": page_size,
                "returned": len(page),
                "matching_count": outcome.matching_count,
                "view_size": outcome.view_size,
                "next_cursor": (
                    encode_cursor(next_offset, tag) if has_more else None
                ),
            },
            # Timings are real-clock and deliberately outside the
            # deterministic sections above.
            "serving": {
                "queue_wait": served.queue_wait,
                "service_time": served.service_time,
                "latency": served.latency,
                "lanes": list(served.lanes),
                "cache_hits": dict(sorted(outcome.cache_hits.items())),
            },
        }
        if getattr(outcome, "degraded", False):
            # Deterministic (phase and reason only — no timing-dependent
            # diagnostic strings), so two replicas dropping the same
            # shards produce byte-identical degraded sections.
            reply["degraded"] = {
                "missing_shards": sorted(
                    int(s) for s in outcome.missing_shards
                ),
                "failures": {
                    str(f.shard_id): {"phase": f.phase, "reason": f.reason}
                    for f in outcome.failures
                },
                "top_k_guarantee": False,
            }
        return reply

    # -- lifespan ------------------------------------------------------------

    async def _lifespan(self, receive, send) -> None:
        while True:
            message = await receive()
            if message["type"] == "lifespan.startup":
                try:
                    if self.manage_server and not self.server.running:
                        await self.server.start()
                except Exception as exc:
                    await send(
                        {
                            "type": "lifespan.startup.failed",
                            "message": str(exc),
                        }
                    )
                    return
                await send({"type": "lifespan.startup.complete"})
            elif message["type"] == "lifespan.shutdown":
                if self.manage_server:
                    await self.server.stop()
                await send({"type": "lifespan.shutdown.complete"})
                return


ASGIApp = Callable[[dict, Callable, Callable], Awaitable[None]]


class HTTPServingEndpoint:
    """Serve an ASGI app over HTTP/1.1 on an asyncio socket.

    Deliberately minimal — enough protocol for JSON APIs and snapshot
    byte streams: one request per connection (``Connection: close``),
    bodies framed by ``Content-Length``, no chunked uploads, no TLS.
    ``port=0`` binds an ephemeral port (read :attr:`port` after
    :meth:`start`), which is what tests and same-host fleets want.

    Two client-side failure domains are bounded here, before the ASGI
    app ever runs: a client that trickles its request slower than
    ``read_timeout`` gets a typed 408 (a reader coroutine must not be
    pinned open forever by a slowloris), and one that frames more than
    ``max_request_bytes`` gets a typed 413 without the body being read.
    ``fault_injector`` (site ``"http.request"``) lets chaos tests crash
    or stall the bridge itself, deterministically.
    """

    def __init__(
        self,
        app: ASGIApp,
        host: str = "127.0.0.1",
        port: int = 0,
        read_timeout: float = 10.0,
        max_request_bytes: int = _MAX_BODY_BYTES,
        fault_injector: Optional[FaultInjector] = None,
    ):
        self.app = app
        self.host = host
        self.port = port
        self.read_timeout = read_timeout
        self.max_request_bytes = max_request_bytes
        self._faults = fault_injector
        self._server: Optional[asyncio.base_events.Server] = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    async def start(self) -> "HTTPServingEndpoint":
        if self._server is not None:
            raise RuntimeError("endpoint already started")
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def stop(self) -> None:
        if self._server is None:
            return
        self._server.close()
        await self._server.wait_closed()
        self._server = None

    @staticmethod
    def _canned_reply(status: int, code: str, message: str) -> bytes:
        """A complete typed JSON response, framed for one write."""
        payload = _dump({"error": {"code": code, "message": message}})
        phrase = _REASON_PHRASES.get(status, "Unknown")
        head = (
            f"HTTP/1.1 {status} {phrase}\r\n"
            "content-type: application/json\r\n"
            f"content-length: {len(payload)}\r\n"
            "connection: close\r\n\r\n"
        )
        return head.encode("latin-1") + payload

    async def _reject(self, writer: asyncio.StreamWriter, raw: bytes) -> None:
        try:
            writer.write(raw)
            await writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        if self._faults is not None:
            # Run the fault site off the event loop: an injected delay
            # or hang must stall *this* connection, not every one.
            try:
                await asyncio.get_running_loop().run_in_executor(
                    None, self._faults.act, "http.request"
                )
            except InjectedFaultError:
                # An injected bridge crash: the connection just drops,
                # exactly what a killed process looks like to clients.
                writer.close()
                return
        try:
            scope, body = await asyncio.wait_for(
                self._read_request(reader, self.max_request_bytes),
                timeout=self.read_timeout,
            )
        except asyncio.TimeoutError:
            await self._reject(
                writer,
                self._canned_reply(
                    408,
                    "request_timeout",
                    f"request not received within {self.read_timeout}s",
                ),
            )
            return
        except _RequestTooLarge:
            await self._reject(
                writer,
                self._canned_reply(
                    413,
                    "payload_too_large",
                    f"request exceeds {self.max_request_bytes} bytes",
                ),
            )
            return
        except (
            asyncio.IncompleteReadError,
            asyncio.LimitOverrunError,
            ValueError,
        ):
            writer.close()
            return
        messages = [
            {"type": "http.request", "body": body, "more_body": False},
            {"type": "http.disconnect"},
        ]
        position = 0

        async def receive():
            nonlocal position
            message = messages[min(position, len(messages) - 1)]
            position += 1
            return message

        started: dict[str, Any] = {}
        chunks: list[bytes] = []

        async def send(message):
            if message["type"] == "http.response.start":
                started["status"] = message["status"]
                started["headers"] = message.get("headers", [])
            elif message["type"] == "http.response.body":
                chunks.append(message.get("body", b""))

        try:
            await self.app(scope, receive, send)
            payload = b"".join(chunks)
            status = started.get("status", 500)
            phrase = _REASON_PHRASES.get(status, "Unknown")
            head = [f"HTTP/1.1 {status} {phrase}".encode("latin-1")]
            for name, value in started.get("headers", []):
                head.append(name + b": " + value)
            head.append(b"content-length: " + str(len(payload)).encode())
            head.append(b"connection: close")
            writer.write(b"\r\n".join(head) + b"\r\n\r\n" + payload)
            await writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    @staticmethod
    async def _read_request(
        reader: asyncio.StreamReader, limit: int = _MAX_BODY_BYTES
    ) -> tuple[dict, bytes]:
        request_line = (await reader.readline()).decode("latin-1").strip()
        if not request_line:
            raise ValueError("empty request")
        try:
            method, target, _version = request_line.split(" ", 2)
        except ValueError:
            raise ValueError(f"malformed request line {request_line!r}")
        path, _, query = target.partition("?")
        headers: list[tuple[bytes, bytes]] = []
        content_length = 0
        header_bytes = len(request_line)
        while True:
            raw_line = await reader.readline()
            header_bytes += len(raw_line)
            if header_bytes > limit:
                # Unbounded header streams are the other way a client
                # can feed us forever; same limit, same typed reply.
                raise _RequestTooLarge("headers too large")
            line = raw_line.strip()
            if not line:
                break
            name, _, value = line.partition(b":")
            name = name.lower().strip()
            value = value.strip()
            headers.append((name, value))
            if name == b"content-length":
                content_length = int(value)
        if content_length > limit:
            raise _RequestTooLarge("body too large")
        body = (
            await reader.readexactly(content_length) if content_length else b""
        )
        scope = {
            "type": "http",
            "asgi": {"version": "3.0", "spec_version": "2.3"},
            "http_version": "1.1",
            "method": method.upper(),
            "path": path,
            "raw_path": target.encode("latin-1"),
            "query_string": query.encode("latin-1"),
            "headers": headers,
            "scheme": "http",
        }
        return scope, body


class BackgroundHTTPServing:
    """Engine → server → API → endpoint on a background event loop.

    The synchronous fleet entry point: benchmarks, the two-process
    difftest's in-process reference, and peer helpers construct one,
    :meth:`start` it (blocks until the socket is bound and warm-up
    finished — or raises what startup raised), talk plain HTTP to
    :attr:`url`, and :meth:`stop` it.
    """

    def __init__(
        self,
        engine,
        config=None,
        host: str = "127.0.0.1",
        port: int = 0,
        startup_timeout: float = 60.0,
    ):
        self.engine = engine
        self.config = config
        self.host = host
        self.port = port
        self.startup_timeout = startup_timeout
        self.server: Optional[SearchServer] = None
        self.api: Optional[SearchAPI] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._error: Optional[BaseException] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._shutdown: Optional[asyncio.Event] = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> str:
        if self._thread is not None:
            raise RuntimeError("already started")
        self._thread = threading.Thread(
            target=lambda: asyncio.run(self._main()),
            name="repro-http-serving",
            daemon=True,
        )
        self._thread.start()
        if not self._ready.wait(self.startup_timeout):
            raise TimeoutError("HTTP serving did not start in time")
        if self._error is not None:
            self._thread.join()
            self._thread = None
            raise self._error
        return self.url

    def stop(self) -> None:
        if self._thread is None:
            return
        loop, shutdown = self._loop, self._shutdown
        if loop is not None and shutdown is not None:
            loop.call_soon_threadsafe(shutdown.set)
        self._thread.join()
        self._thread = None

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._shutdown = asyncio.Event()
        endpoint: Optional[HTTPServingEndpoint] = None
        try:
            self.server = SearchServer(self.engine, self.config)
            await self.server.start()
            self.api = SearchAPI(self.server)
            endpoint = HTTPServingEndpoint(self.api, self.host, self.port)
            await endpoint.start()
            self.port = endpoint.port
        except BaseException as exc:
            self._error = exc
            self._ready.set()
            return
        self._ready.set()
        try:
            await self._shutdown.wait()
        finally:
            await endpoint.stop()
            await self.server.stop()
