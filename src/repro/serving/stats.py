"""Serving-side observability: request counters and latency recorders.

The engine's :class:`~repro.core.cache.QueryCache` already counts cache
traffic; this module counts *requests* — what was admitted, what was
shed and why, and how long the admitted ones waited and ran.  Latencies
are kept in bounded sliding windows (a serving process runs forever; an
unbounded sample list would not), so percentiles describe recent
traffic, which is what load-shedding and capacity decisions want.

Everything is guarded by one lock: recording happens on executor
threads and the event loop concurrently, and ``snapshot()`` must return
numbers that belong together (the same consistency discipline the
sharded cache's ``stats_dict`` follows).
"""

from __future__ import annotations

import math
import threading
from collections import Counter, deque
from typing import Any, Optional


class LatencyRecorder:
    """A bounded sliding window of latency samples, in seconds.

    Keeps the last ``window`` samples plus lifetime count/total, so
    percentiles reflect recent behavior while throughput math can still
    use the all-time counters.  Not thread-safe on its own —
    :class:`ServingStats` serializes access.
    """

    def __init__(self, window: int = 2048):
        self._samples: deque[float] = deque(maxlen=window)
        self.count = 0
        self.total = 0.0
        #: Lifetime maximum (the window-scoped max lives in ``summary``).
        self.lifetime_max = 0.0

    def record(self, seconds: float) -> None:
        self._samples.append(seconds)
        self.count += 1
        self.total += seconds
        if seconds > self.lifetime_max:
            self.lifetime_max = seconds

    def percentile(self, fraction: float) -> Optional[float]:
        """The ``fraction``-quantile (0 < fraction <= 1) of the window,
        or ``None`` when no samples were recorded."""
        if not self._samples:
            return None
        ordered = sorted(self._samples)
        index = max(0, math.ceil(fraction * len(ordered)) - 1)
        return ordered[index]

    @property
    def mean(self) -> Optional[float]:
        """Window-scoped mean — same population as the percentiles.

        (It used to divide lifetime ``total`` by lifetime ``count``,
        which made ``summary()`` mix scopes: a long-gone startup spike
        dragged the mean while p50/p95/p99/max had already forgotten
        it.  Lifetime aggregates live under explicit names now.)
        """
        if not self._samples:
            return None
        return sum(self._samples) / len(self._samples)

    @property
    def lifetime_mean(self) -> Optional[float]:
        return self.total / self.count if self.count else None

    def summary(self) -> dict[str, Any]:
        """Window-scoped distribution (``mean`` and ``max`` included —
        a startup spike must not pin the summary forever) plus
        explicitly-named lifetime aggregates."""
        return {
            "count": self.count,
            "window_count": len(self._samples),
            "mean": self.mean,
            "p50": self.percentile(0.50),
            "p95": self.percentile(0.95),
            "p99": self.percentile(0.99),
            "max": max(self._samples) if self._samples else None,
            "lifetime_mean": self.lifetime_mean,
            "lifetime_max": self.lifetime_max if self.count else None,
        }


class ServingStats:
    """Request-level counters for one :class:`SearchServer`.

    ``submitted = completed + failed + rejected + in flight`` at every
    consistent snapshot; rejections are broken down by the typed
    ``Overloaded`` reason.  Three latencies are tracked per completed
    request: ``queue_wait`` (admission to execution start), ``service``
    (engine time inside the thread pool) and ``latency`` (end to end,
    the number a client experiences).
    """

    def __init__(self, window: int = 2048):
        self._lock = threading.Lock()
        self.submitted = 0
        self.completed = 0
        self.degraded = 0
        self.failed = 0
        self.rejected: Counter[str] = Counter()
        self.warmed_targets = 0
        self.queue_wait = LatencyRecorder(window)
        self.service = LatencyRecorder(window)
        self.latency = LatencyRecorder(window)
        self._cache_hit_counts: Counter[str] = Counter()

    # -- recording (called from the loop and executor threads) ---------------

    def record_submitted(self) -> None:
        with self._lock:
            self.submitted += 1

    def record_rejected(self, reason: str) -> None:
        with self._lock:
            self.rejected[reason] += 1

    def record_completed(
        self,
        queue_wait: float,
        service: float,
        latency: float,
        cache_hits: Optional[dict[str, str]] = None,
        degraded: bool = False,
    ) -> None:
        with self._lock:
            self.completed += 1
            if degraded:
                # Completed, but with shards missing under the
                # partial_results policy — counted separately so
                # operators can see partial availability in /stats.
                self.degraded += 1
            self.queue_wait.record(queue_wait)
            self.service.record(service)
            self.latency.record(latency)
            if cache_hits:
                self._cache_hit_counts.update(cache_hits.values())

    def record_failed(self) -> None:
        with self._lock:
            self.failed += 1

    def record_warmed(self, targets: int) -> None:
        with self._lock:
            self.warmed_targets += targets

    # -- reading -------------------------------------------------------------

    @property
    def rejected_total(self) -> int:
        with self._lock:
            return sum(self.rejected.values())

    def snapshot(self) -> dict[str, Any]:
        """One consistent dict of every counter and latency summary."""
        with self._lock:
            return {
                "submitted": self.submitted,
                "completed": self.completed,
                "degraded": self.degraded,
                "failed": self.failed,
                "rejected": dict(self.rejected),
                "rejected_total": sum(self.rejected.values()),
                "warmed_targets": self.warmed_targets,
                "cache_hit_counts": dict(self._cache_hit_counts),
                "queue_wait": self.queue_wait.summary(),
                "service": self.service.summary(),
                "latency": self.latency.summary(),
            }
