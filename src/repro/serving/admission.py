"""Admission control: decide per request whether to serve or shed.

A bounded system needs a typed "no": when the queue is full or a view
already has its fill of in-flight requests, rejecting *now* with
:class:`Overloaded` is strictly better than queueing into a latency
cliff.  The controller tracks two things:

* **per-view inflight** — requests admitted but not yet finished
  (queued + executing).  The limit keeps one hot view from occupying
  the whole queue and starving every other view.
* **per-view cache coldness** — an exponentially-weighted moving
  average of the fraction of per-document cache misses each served
  request reported (``SearchOutcome.cache_hits``).  Cold traffic costs
  path-index probes and full merges; warm traffic is an array sweep.
  When the queue is under pressure and shedding is enabled, requests
  for views whose recent traffic has been mostly cold are rejected
  first — they are the expensive ones, and dropping them protects the
  latency of the warm majority.

The controller is lock-protected: admission runs on the event loop but
observations arrive from executor threads.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Optional, Sequence

#: ``Overloaded.reason`` values (typed, not free-form strings).
REASON_QUEUE_FULL = "queue_full"
REASON_VIEW_SATURATED = "view_saturated"
REASON_SHARD_SATURATED = "shard_saturated"
REASON_COLD_VIEW_SHED = "cold_view_shed"
REASON_SERVER_STOPPED = "server_stopped"


@dataclass(frozen=True)
class Overloaded:
    """A typed rejection: the request was shed, not served.

    Carries enough state for the caller to act (retry against another
    replica, back off, or surface the numbers): which limit tripped,
    the observed value and the configured ceiling.
    """

    reason: str
    view: str
    queue_depth: int
    inflight: int
    limit: int
    #: Which shard tripped a ``shard_saturated`` rejection (else None).
    shard: Optional[int] = None

    def describe(self) -> str:
        where = f" shard={self.shard}" if self.shard is not None else ""
        return (
            f"overloaded ({self.reason}): view={self.view!r}{where} "
            f"queue_depth={self.queue_depth} inflight={self.inflight} "
            f"limit={self.limit}"
        )


@dataclass(frozen=True)
class AdmissionLimits:
    """The knobs an :class:`AdmissionController` enforces."""

    max_queue_depth: int = 64
    max_inflight_per_view: int = 16
    #: Queued + executing requests touching any one shard lane; ``None``
    #: disables the check.  Under a sharded corpus this is the knob that
    #: keeps one hot shard (skewed document placement, one giant view)
    #: from absorbing the whole fleet's admission budget.
    max_inflight_per_shard: Optional[int] = None
    #: Shed cold-view traffic under queue pressure (off by default; the
    #: two hard limits above are always on).
    shed_cold_views: bool = False
    #: Queue fill fraction at which cold-view shedding arms.
    shed_queue_fraction: float = 0.5
    #: Miss-rate EWMA above which a view counts as cold.
    shed_miss_threshold: float = 0.75
    #: EWMA smoothing factor for per-view miss rates.
    miss_ewma_alpha: float = 0.3
    #: Fractional EWMA decay applied on every cold-shed decision.  The
    #: EWMA normally updates only from *served* requests, so without
    #: decay a shed view's coldness score would freeze and the view
    #: would be shed forever; decaying it lets a probe request through
    #: after sustained shedding, and the probe's real cache outcome
    #: then resets the score honestly.
    shed_probe_decay: float = 0.05


class AdmissionController:
    """Tracks inflight counts and coldness; yields admit/shed decisions."""

    def __init__(self, limits: Optional[AdmissionLimits] = None):
        self.limits = limits or AdmissionLimits()
        self._lock = threading.Lock()
        self._inflight: dict[str, int] = {}
        self._shard_inflight: dict[int, int] = {}
        self._miss_ewma: dict[str, float] = {}

    # -- the decision --------------------------------------------------------

    def try_admit(
        self,
        view_name: str,
        queue_depth: int,
        shards: Sequence[int] = (),
    ) -> Optional[Overloaded]:
        """Admit (returns ``None``, inflight incremented) or reject.

        Checks are ordered cheapest-signal-first: the queue bound (a
        global backstop), the per-view inflight bound (fairness), the
        per-shard inflight bound over ``shards`` (the lanes this request
        would execute under — shard fairness, when a limit is set), then
        — only when armed by queue pressure — the cold-view shed.  An
        admitted request's ``shards`` are accounted until ``release`` is
        called with the same sequence.
        """
        limits = self.limits
        with self._lock:
            if queue_depth >= limits.max_queue_depth:
                return Overloaded(
                    reason=REASON_QUEUE_FULL,
                    view=view_name,
                    queue_depth=queue_depth,
                    inflight=self._inflight.get(view_name, 0),
                    limit=limits.max_queue_depth,
                )
            inflight = self._inflight.get(view_name, 0)
            if inflight >= limits.max_inflight_per_view:
                return Overloaded(
                    reason=REASON_VIEW_SATURATED,
                    view=view_name,
                    queue_depth=queue_depth,
                    inflight=inflight,
                    limit=limits.max_inflight_per_view,
                )
            if limits.max_inflight_per_shard is not None:
                for shard in shards:
                    shard_inflight = self._shard_inflight.get(shard, 0)
                    if shard_inflight >= limits.max_inflight_per_shard:
                        return Overloaded(
                            reason=REASON_SHARD_SATURATED,
                            view=view_name,
                            queue_depth=queue_depth,
                            inflight=shard_inflight,
                            limit=limits.max_inflight_per_shard,
                            shard=shard,
                        )
            if (
                limits.shed_cold_views
                and queue_depth
                >= limits.shed_queue_fraction * limits.max_queue_depth
                and self._miss_ewma.get(view_name, 0.0)
                > limits.shed_miss_threshold
            ):
                # Decay toward warmth on every shed so the score cannot
                # freeze above the threshold with no served traffic to
                # update it — eventually a probe request is admitted.
                self._miss_ewma[view_name] *= 1.0 - limits.shed_probe_decay
                return Overloaded(
                    reason=REASON_COLD_VIEW_SHED,
                    view=view_name,
                    queue_depth=queue_depth,
                    inflight=inflight,
                    limit=limits.max_inflight_per_view,
                )
            self._inflight[view_name] = inflight + 1
            for shard in shards:
                self._shard_inflight[shard] = (
                    self._shard_inflight.get(shard, 0) + 1
                )
            return None

    def release(self, view_name: str, shards: Sequence[int] = ()) -> None:
        """A previously admitted request finished (served or errored).

        ``shards`` must be the sequence the request was admitted with.
        """
        with self._lock:
            remaining = self._inflight.get(view_name, 0) - 1
            if remaining > 0:
                self._inflight[view_name] = remaining
            else:
                self._inflight.pop(view_name, None)
            for shard in shards:
                left = self._shard_inflight.get(shard, 0) - 1
                if left > 0:
                    self._shard_inflight[shard] = left
                else:
                    self._shard_inflight.pop(shard, None)

    # -- the feedback loop ---------------------------------------------------

    def observe(self, view_name: str, cache_hits: dict[str, str]) -> None:
        """Feed one served request's per-document cache outcome back in.

        ``cache_hits`` is ``SearchOutcome.cache_hits`` — the deepest
        cache tier that hit, per document.  The miss fraction updates
        the view's coldness EWMA, which the cold-view shed consults.
        """
        if not cache_hits:
            return
        misses = sum(1 for hit in cache_hits.values() if hit == "miss")
        fraction = misses / len(cache_hits)
        alpha = self.limits.miss_ewma_alpha
        with self._lock:
            previous = self._miss_ewma.get(view_name)
            if previous is None:
                self._miss_ewma[view_name] = fraction
            else:
                self._miss_ewma[view_name] = (
                    alpha * fraction + (1.0 - alpha) * previous
                )

    def note_warmed(self, view_name: str) -> None:
        """The view was explicitly pre-warmed: drop its coldness score.

        Warm-up deterministically fills the skeleton and evaluated
        tiers, so whatever miss history the view accumulated before no
        longer predicts its cost; the next served requests rebuild the
        EWMA from real post-warm outcomes.
        """
        with self._lock:
            self._miss_ewma.pop(view_name, None)

    # -- diagnostics ---------------------------------------------------------

    def inflight(self, view_name: str) -> int:
        with self._lock:
            return self._inflight.get(view_name, 0)

    def shard_inflight(self, shard: int) -> int:
        with self._lock:
            return self._shard_inflight.get(shard, 0)

    def miss_rate(self, view_name: str) -> Optional[float]:
        with self._lock:
            return self._miss_ewma.get(view_name)

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            return {
                "inflight": dict(self._inflight),
                "shard_inflight": dict(self._shard_inflight),
                "miss_ewma": dict(self._miss_ewma),
            }
