"""Proj: projecting XML documents (Marian & Siméon, VLDB 2003).

The paper's third comparison point characterizes the cost of producing a
pruned document by a *full document scan* with isolated-path semantics:

* an element is kept when the root-to-element path matches a prefix of any
  projection path (every QPT node contributes its root-to-node pattern);
* there is no twig pruning — a ``book`` element is kept even when its
  ``year`` fails the view's predicate, because PROJ deals with paths in
  isolation (the key semantic difference Section 4 discusses);
* kept elements are materialized with their values, and elements matching
  a content-producing path keep their whole subtree.

Only generation cost is compared (paper: "Proj merely characterizes the
cost of generating projected documents").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.qpt import QPT
from repro.xmlmodel.node import XMLNode


@dataclass
class ProjectionResult:
    """A projected document and its size statistics."""

    doc_name: str
    root: Optional[XMLNode]
    kept_nodes: int
    scanned_nodes: int

    @property
    def is_empty(self) -> bool:
        return self.root is None


def project_document(qpt: QPT, document_root: XMLNode) -> ProjectionResult:
    """Project an in-memory tree onto the QPT's paths (test entry point)."""
    counters = {"kept": 0, "scanned": 0}
    projected = _project(qpt, document_root, counters)
    return ProjectionResult(
        doc_name=qpt.doc_name,
        root=projected,
        kept_nodes=counters["kept"],
        scanned_nodes=counters["scanned"],
    )


def project_serialized(qpt: QPT, xml_text: str) -> ProjectionResult:
    """Project a *serialized* document: parse it, then project.

    This is the benchmark entry point: PROJ's defining cost is the full
    scan of the underlying document (a SAX pass over the XML input in
    Marian & Siméon), so the parse is part of the measured work — unlike
    the Efficient pipeline, which reads only indices.
    """
    from repro.xmlmodel.parser import parse_xml

    return project_document(qpt, parse_xml(xml_text))


def _project(qpt: QPT, element: XMLNode, counters: dict[str, int]) -> Optional[XMLNode]:
    counters["scanned"] += 1
    tags = tuple(element.path_from_root())
    matches = qpt.match_table(tags)[len(tags) - 1]
    if any(qnode.c_ann for qnode in matches):
        # A content path selects the whole subtree.  The element itself is
        # already counted as scanned above; count its descendants here.
        counters["kept"] += 1
        copy = XMLNode(element.tag, element.text)
        for child in element.children:
            copy.append(_copy_subtree(child, counters))
        return copy
    kept_children = [
        child
        for child in (
            _project(qpt, child, counters) for child in element.children
        )
        if child is not None
    ]
    if not matches and not kept_children:
        return None
    counters["kept"] += 1
    copy = XMLNode(element.tag, element.text)
    for child in kept_children:
        copy.append(child)
    return copy


def _copy_subtree(element: XMLNode, counters: dict[str, int]) -> XMLNode:
    counters["scanned"] += 1
    counters["kept"] += 1
    copy = XMLNode(element.tag, element.text)
    for child in element.children:
        copy.append(_copy_subtree(child, counters))
    return copy
