"""The paper's comparison systems (Section 5.1).

* :mod:`repro.baselines.naive` — Baseline: materialize the whole view at
  query time, then evaluate the keyword query over it.
* :mod:`repro.baselines.gtp` — GTP with TermJoin: structural joins over
  tag-index streams plus base-data access for join values.
* :mod:`repro.baselines.projection` — Proj: projecting XML documents by a
  full document scan.
"""

from repro.baselines.naive import BaselineEngine
from repro.baselines.gtp import GTPEngine, structural_join
from repro.baselines.projection import (
    project_document,
    project_serialized,
    ProjectionResult,
)

__all__ = [
    "BaselineEngine",
    "GTPEngine",
    "structural_join",
    "project_document",
    "project_serialized",
    "ProjectionResult",
]
