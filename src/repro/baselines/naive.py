"""Baseline: materialize the view at query time, then search it.

This is the paper's first comparison system ("materializing the view at
the query time, and evaluating keyword search queries over view").  The
view is evaluated over the *base* documents, every result is fully
materialized (copied out of the base trees, the cost the paper attributes
to this strategy), tokenized, and scored with the same TF-IDF definitions.

Because the scorer is shared with the Efficient pipeline, this engine also
serves as the ground truth for the Theorem 4.1 tests: scores, ranks, term
frequencies and byte lengths must agree exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Union

from repro.core.engine import PhaseTimings, View
from repro.core.qpt import generate_qpts
from repro.core.rewrite import make_base_resolver
from repro.core.scoring import (
    ScoredResult,
    ScoringOutcome,
    score_results,
    select_top_k,
)
from repro.storage.database import XMLDatabase
from repro.xmlmodel.node import XMLNode
from repro.xmlmodel.serializer import serialize
from repro.xmlmodel.tokenizer import normalize_keyword
from repro.xquery.evaluator import EvalContext, Evaluator
from repro.xquery.functions import inline_functions
from repro.xquery.parser import parse_query

import time


@dataclass
class BaselineResult:
    """A ranked, fully materialized result from the Baseline engine."""

    rank: int
    score: float
    scored: ScoredResult
    materialized: XMLNode

    def tf(self, keyword: str) -> int:
        return self.scored.tf(keyword)

    def to_xml(self, indent: Optional[int] = None) -> str:
        return serialize(self.materialized, indent=indent)


@dataclass
class BaselineOutcome:
    results: list[BaselineResult]
    view_size: int
    matching_count: int
    idf: dict[str, float]
    timings: PhaseTimings
    scoring: ScoringOutcome


class BaselineEngine:
    """Materialize-then-search keyword search over views."""

    def __init__(self, database: XMLDatabase, normalize_scores: bool = True):
        self.database = database
        self.normalize_scores = normalize_scores
        self.last_timings: Optional[PhaseTimings] = None

    def define_view(self, name: str, text: str) -> View:
        program = parse_query(text)
        expr = inline_functions(program)
        # QPTs are not used for evaluation here, but keeping them makes the
        # Baseline and Efficient views interchangeable in the harness.
        qpts = generate_qpts(expr)
        return View(name=name, text=text, expr=expr, qpts=qpts)

    def search(
        self,
        view: Union[View, str],
        keywords: Sequence[str],
        top_k: Optional[int] = 10,
        conjunctive: bool = True,
    ) -> list[BaselineResult]:
        return self.search_detailed(view, keywords, top_k, conjunctive).results

    def search_detailed(
        self,
        view: View,
        keywords: Sequence[str],
        top_k: Optional[int] = 10,
        conjunctive: bool = True,
    ) -> BaselineOutcome:
        timings = PhaseTimings()
        normalized = tuple(normalize_keyword(keyword) for keyword in keywords)

        # Materialize the entire view: evaluate over base documents and
        # deep-copy every result (the view exists independently of the
        # bases after this, which is what "materialized" means).
        start = time.perf_counter()
        evaluator = Evaluator(
            EvalContext(resolver=make_base_resolver(self.database))
        )
        items = evaluator.evaluate(view.expr)
        view_results = [
            item.detach_copy() for item in items if isinstance(item, XMLNode)
        ]
        # Materialization proper: the view becomes a document of its own.
        # (The paper's Baseline spent 58 of 59 seconds here.)
        materialized_view = [serialize(result) for result in view_results]
        timings.evaluator = time.perf_counter() - start

        # Tokenize + score the materialized results; select top-k.
        start = time.perf_counter()
        outcome = score_results(
            view_results,
            normalized,
            conjunctive=conjunctive,
            normalize=self.normalize_scores,
        )
        winners = select_top_k(outcome, top_k)
        results = [
            BaselineResult(
                rank=rank,
                score=scored.score,
                scored=scored,
                materialized=scored.node,
            )
            for rank, scored in enumerate(winners, start=1)
        ]
        timings.post_processing = time.perf_counter() - start

        self.last_timings = timings
        return BaselineOutcome(
            results=results,
            view_size=outcome.view_size,
            matching_count=len(outcome.results),
            idf=outcome.idf,
            timings=timings,
            scoring=outcome,
        )
