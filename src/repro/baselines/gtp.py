"""GTP with TermJoin: structural joins plus base-data value access.

The paper's second comparison system (Chen et al.'s Generalized Tree
Patterns evaluated with Al-Khalifa et al.'s TermJoin) solves the same
sub-problem as PDT generation — find the elements satisfying the pattern's
mutual constraints — but does it the pre-path-index way:

* per-node candidate streams come from the *tag index* (every element with
  the tag, regardless of its path), so the streams are much longer than
  the path-index lists;
* the document hierarchy is reconstructed with stack-based *structural
  joins* between parent and child streams (one semijoin per QPT edge, in
  both directions: descendant constraints bottom-up, ancestor constraints
  top-down);
* predicate operands and join values are fetched from the *base data*
  (document storage), the second cost the paper calls out.

The output is the same record set the streaming PDT algorithm produces, so
the rest of the pipeline (evaluator, scorer, materializer) is shared — the
comparison isolates exactly the two architectural differences the paper
credits for its speedup.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional, Sequence, Union

from repro.core.engine import PhaseTimings, SearchOutcome, SearchResult, View
from repro.core.pdt import PDTRecord, PDTResult, assemble_pdt
from repro.core.qpt import QPT, QPTNode, generate_qpts
from repro.core.rewrite import make_pdt_resolver
from repro.core.scoring import score_results, select_top_k
from repro.dewey import DeweyID, pack
from repro.storage.database import XMLDatabase
from repro.xmlmodel.node import XMLNode
from repro.xmlmodel.tokenizer import normalize_keyword
from repro.xquery.evaluator import EvalContext, Evaluator
from repro.xquery.functions import inline_functions
from repro.xquery.parser import parse_query

Dewey = tuple[int, ...]


def structural_join(
    ancestors: Sequence[Dewey],
    descendants: Sequence[Dewey],
    axis: str,
) -> tuple[set[Dewey], set[Dewey]]:
    """Stack-based structural (semi)join between two sorted Dewey lists.

    Returns ``(matched_ancestors, matched_descendants)``: the ancestors
    with at least one qualifying descendant and the descendants with at
    least one qualifying ancestor, under axis ``/`` (parent-child) or
    ``//`` (ancestor-descendant).  Single merge pass, O((|A|+|D|) * depth).
    """
    matched_anc: set[Dewey] = set()
    matched_desc: set[Dewey] = set()
    stack: list[Dewey] = []  # open ancestors (each a prefix of the next)
    ai = di = 0
    while di < len(descendants):
        descendant = descendants[di]
        # Open every ancestor that starts at or before this descendant.
        # Ancestors equal to the descendant id are *not* its ancestors.
        while ai < len(ancestors) and ancestors[ai] <= descendant:
            candidate = ancestors[ai]
            while stack and candidate[: len(stack[-1])] != stack[-1]:
                stack.pop()
            stack.append(candidate)
            ai += 1
        # Drop open ancestors that cannot contain this descendant.
        while stack and descendant[: len(stack[-1])] != stack[-1]:
            stack.pop()
        for open_ancestor in stack:
            if open_ancestor == descendant:
                continue
            if axis == "/" and len(open_ancestor) != len(descendant) - 1:
                continue
            matched_anc.add(open_ancestor)
            matched_desc.add(descendant)
        di += 1
    return matched_anc, matched_desc


@dataclass
class GTPStatistics:
    """Work counters for the GTP run (reported by benchmarks)."""

    tag_stream_entries: int = 0
    structural_joins: int = 0
    base_value_accesses: int = 0


class GTPEngine:
    """Keyword search over views via GTP + TermJoin (comparison system)."""

    def __init__(self, database: XMLDatabase, normalize_scores: bool = True):
        self.database = database
        self.normalize_scores = normalize_scores
        self.last_timings: Optional[PhaseTimings] = None
        self.last_statistics: Optional[GTPStatistics] = None

    def define_view(self, name: str, text: str) -> View:
        program = parse_query(text)
        expr = inline_functions(program)
        return View(name=name, text=text, expr=expr, qpts=generate_qpts(expr))

    # -- pattern matching via structural joins -------------------------------

    def build_pruned_document(
        self, qpt: QPT, keywords: tuple[str, ...], stats: GTPStatistics
    ) -> PDTResult:
        """Compute the QPT's PDT-equivalent with structural joins."""
        indexed = self.database.get(qpt.doc_name)
        tag_index = indexed.tag_index
        store = indexed.store
        inverted = indexed.inverted_index

        # Candidate streams per QPT node from the tag index, with
        # predicates checked against base-data values (TermJoin has no
        # (path, value) index to push predicates into).
        candidates: dict[int, list[Dewey]] = {}
        values: dict[int, dict[Dewey, Optional[str]]] = {}
        for qnode in qpt.nodes:
            stream = tag_index.lookup(qnode.tag)
            stats.tag_stream_entries += len(stream)
            if qnode.predicates:
                kept: list[Dewey] = []
                node_values: dict[Dewey, Optional[str]] = {}
                for dewey in stream:
                    record = store.record(DeweyID(dewey))
                    stats.base_value_accesses += 1
                    if all(p.matches(record.value) for p in qnode.predicates):
                        kept.append(dewey)
                        node_values[dewey] = record.value
                candidates[qnode.index] = kept
                values[qnode.index] = node_values
            else:
                candidates[qnode.index] = list(stream)

        # Descendant constraints, bottom-up (CE of Definition 1): one
        # structural semijoin per mandatory edge.
        for qnode in reversed(qpt.nodes):
            pool = candidates[qnode.index]
            for edge in qnode.mandatory_child_edges():
                child_pool = candidates[edge.child.index]
                matched_anc, _ = structural_join(pool, child_pool, edge.axis)
                stats.structural_joins += 1
                pool = [dewey for dewey in pool if dewey in matched_anc]
            candidates[qnode.index] = pool

        # Ancestor constraints, top-down (PE of Definition 2).
        selected: dict[int, list[Dewey]] = {}
        for qnode in qpt.nodes:  # pre-order
            edge = qnode.parent_edge
            assert edge is not None
            pool = candidates[qnode.index]
            if edge.parent is qpt.root:
                if edge.axis == "/":
                    pool = [dewey for dewey in pool if len(dewey) == 1]
                selected[qnode.index] = pool
                continue
            parent_pool = selected[edge.parent.index]
            _, matched_desc = structural_join(parent_pool, pool, edge.axis)
            stats.structural_joins += 1
            selected[qnode.index] = [d for d in pool if d in matched_desc]

        # Assemble the records (keyed by packed Dewey byte keys, the form
        # assemble_pdt nests by); join values and byte lengths come from
        # the base data (the GTP cost the paper highlights).
        records: dict[bytes, PDTRecord] = {}
        for qnode in qpt.nodes:
            for dewey in selected[qnode.index]:
                key = pack(dewey)
                record = records.get(key)
                if record is None:
                    base = store.record(DeweyID(dewey))
                    stats.base_value_accesses += 1
                    record = PDTRecord(
                        key=key,
                        tag=qnode.tag,
                        value=base.value,
                        byte_length=base.byte_length,
                    )
                    records[key] = record
                if qnode.v_ann or qnode.predicates:
                    record.wants_value = True
                if qnode.c_ann:
                    record.wants_content = True

        # TermJoin: compute per-keyword tf for content nodes by a
        # structural merge join between the content-node stream and each
        # keyword's full posting list (TermJoin has no subtree prefix-sum
        # index; the Efficient pipeline's range-sum lookup is exactly the
        # optimization the paper credits to its inverted-list usage).
        # Both sides run on packed byte keys — no per-posting decode.
        content_nodes = sorted(
            key for key, record in records.items() if record.wants_content
        )
        tf_by_node: dict[bytes, dict[str, int]] = {
            key: {} for key in content_nodes
        }
        for keyword in keywords:
            posting_list = inverted.lookup(keyword)
            stats.tag_stream_entries += len(posting_list)
            totals = _termjoin_subtree_tf(
                content_nodes, posting_list.items_packed()
            )
            stats.structural_joins += 1
            for key, total in totals.items():
                tf_by_node[key][keyword] = total

        def tf_lookup(dewey_id: DeweyID) -> dict[str, int]:
            totals = tf_by_node.get(dewey_id.packed, {})
            return {keyword: totals.get(keyword, 0) for keyword in keywords}

        return assemble_pdt(
            doc_name=qpt.doc_name,
            records=records,
            keywords=keywords,
            tf_lookup=tf_lookup,
            entry_count=stats.tag_stream_entries,
        )

    # -- search -------------------------------------------------------------------

    def search(
        self,
        view: Union[View, str],
        keywords: Sequence[str],
        top_k: Optional[int] = 10,
        conjunctive: bool = True,
    ) -> list[SearchResult]:
        return self.search_detailed(view, keywords, top_k, conjunctive).results

    def search_detailed(
        self,
        view: View,
        keywords: Sequence[str],
        top_k: Optional[int] = 10,
        conjunctive: bool = True,
    ) -> SearchOutcome:
        timings = PhaseTimings()
        stats = GTPStatistics()
        normalized = tuple(normalize_keyword(keyword) for keyword in keywords)

        start = time.perf_counter()
        pruned_docs = {
            doc_name: self.build_pruned_document(qpt, normalized, stats)
            for doc_name, qpt in view.qpts.items()
        }
        timings.pdt = time.perf_counter() - start

        start = time.perf_counter()
        evaluator = Evaluator(EvalContext(resolver=make_pdt_resolver(pruned_docs)))
        items = evaluator.evaluate(view.expr)
        view_results = [item for item in items if isinstance(item, XMLNode)]
        timings.evaluator = time.perf_counter() - start

        start = time.perf_counter()
        outcome = score_results(
            view_results,
            normalized,
            conjunctive=conjunctive,
            normalize=self.normalize_scores,
        )
        winners = select_top_k(outcome, top_k)
        results = [
            SearchResult(
                rank=rank, score=scored.score, scored=scored, _database=self.database
            )
            for rank, scored in enumerate(winners, start=1)
        ]
        for result in results:
            result.materialize()
        timings.post_processing = time.perf_counter() - start

        self.last_timings = timings
        self.last_statistics = stats
        return SearchOutcome(
            results=results,
            view_size=outcome.view_size,
            matching_count=len(outcome.results),
            idf=outcome.idf,
            pdts=pruned_docs,
            timings=timings,
        )

def _termjoin_subtree_tf(
    content_nodes: Sequence[bytes], postings
) -> dict[bytes, int]:
    """Merge-join content nodes with (packed key, tf) pairs, summing
    contained tf.  Packed-key byte prefixing is ancestry, so the stack
    discipline is identical to the tuple form."""
    totals: dict[bytes, int] = {}
    stack: list[bytes] = []
    ni = 0
    for key, tf in postings:
        while ni < len(content_nodes) and content_nodes[ni] <= key:
            candidate = content_nodes[ni]
            while stack and not candidate.startswith(stack[-1]):
                stack.pop()
            stack.append(candidate)
            ni += 1
        while stack and not key.startswith(stack[-1]):
            stack.pop()
        for ancestor in stack:
            totals[ancestor] = totals.get(ancestor, 0) + tf
    return totals
