"""The experiments of Section 5, one function per table/figure.

Every function returns an :class:`ExperimentTable` with the same series the
paper plots.  Databases are cached per configuration so sweeps that share a
dataset (keywords, joins, nesting, top-k) reuse one build.

Scale note: the paper's x-axis is 100..500MB on a C++ engine; ours is a
scale factor on the synthetic INEX generator running on a pure-Python
substrate.  The claims under test are *shape* claims — who wins, by
roughly what factor, what grows linearly — as recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.baselines.gtp import GTPEngine
from repro.baselines.naive import BaselineEngine
from repro.baselines.projection import project_serialized
from repro.bench.harness import ExperimentTable, timed
from repro.core.engine import KeywordSearchEngine
from repro.storage.database import XMLDatabase
from repro.workloads.inex import INEXConfig, generate_inex_database
from repro.workloads.params import (
    ExperimentParams,
    KEYWORDS_BY_SELECTIVITY,
    PARAMETER_TABLE,
)
from repro.workloads.views import view_for_params

_DB_CACHE: dict[tuple, XMLDatabase] = {}


def build_database(params: ExperimentParams) -> XMLDatabase:
    """The (cached) synthetic INEX database for a configuration."""
    key = (
        params.data_scale,
        params.element_size,
        round(params.join_selectivity, 3),
        params.seed,
    )
    database = _DB_CACHE.get(key)
    if database is None:
        database = generate_inex_database(
            INEXConfig(
                scale=params.data_scale,
                element_size=params.element_size,
                join_selectivity=params.join_selectivity,
                seed=params.seed,
            )
        )
        _DB_CACHE[key] = database
    return database


def clear_database_cache() -> None:
    _DB_CACHE.clear()


def build_engines(
    database: XMLDatabase,
) -> tuple[KeywordSearchEngine, BaselineEngine, GTPEngine]:
    # Query cache off throughout: the paper figures time the per-query
    # pipeline; repeated measurement runs must not hit warm-cache serving.
    return (
        KeywordSearchEngine(database, enable_cache=False),
        BaselineEngine(database),
        GTPEngine(database),
    )


def _efficient_time(
    params: ExperimentParams, repeats: int
) -> tuple[float, KeywordSearchEngine]:
    database = build_database(params)
    engine = KeywordSearchEngine(database, enable_cache=False)
    view = engine.define_view("bench", view_for_params(params))
    keywords = params.keywords()
    elapsed, _ = timed(
        lambda: engine.search(view, keywords, top_k=params.top_k), repeats
    )
    return elapsed, engine


def _breakdown_row(table: ExperimentTable, label, engine: KeywordSearchEngine,
                   total: float) -> None:
    timings = engine.last_timings
    table.add_row(
        label,
        pdt=timings.pdt,
        evaluator=timings.evaluator,
        post_processing=timings.post_processing,
        total=total,
    )


# -- Table 1 -------------------------------------------------------------------


def run_params_table() -> ExperimentTable:
    """Table 1: the experimental parameter grid (values and defaults)."""
    defaults = ExperimentParams()
    table = ExperimentTable(
        experiment_id="T1",
        title="Experimental parameters",
        parameter="parameter",
        columns=["values", "default"],
    )
    for name, values in PARAMETER_TABLE.items():
        table.add_row(
            name,
            values=", ".join(str(v) for v in values),
            default=str(getattr(defaults, name)),
        )
    return table


# -- Figure 13: varying size of data, all four systems ---------------------------


def run_fig13_data_size(
    scales: Optional[Sequence[int]] = None, repeats: int = 1
) -> ExperimentTable:
    """Figure 13: run time of Baseline/GTP/Proj/Efficient vs data size."""
    scales = list(scales or PARAMETER_TABLE["data_scale"])
    table = ExperimentTable(
        experiment_id="F13",
        title="Varying size of data (seconds)",
        parameter="scale",
        columns=["baseline", "gtp", "proj", "efficient"],
    )
    for scale in scales:
        params = ExperimentParams(data_scale=scale)
        database = build_database(params)
        view_text = view_for_params(params)
        keywords = params.keywords()

        efficient = KeywordSearchEngine(database, enable_cache=False)
        eview = efficient.define_view("bench", view_text)
        # materialize=True: Baseline and GTP expand every winner inside
        # their timed region, so the cross-system comparison must charge
        # Efficient for top-k materialization too (as the paper does).
        efficient_time, _ = timed(
            lambda: efficient.search(
                eview, keywords, top_k=params.top_k, materialize=True
            ),
            repeats,
        )

        baseline = BaselineEngine(database)
        bview = baseline.define_view("bench", view_text)
        baseline_time, _ = timed(
            lambda: baseline.search(bview, keywords, top_k=params.top_k), repeats
        )

        gtp = GTPEngine(database)
        gview = gtp.define_view("bench", view_text)
        gtp_time, _ = timed(
            lambda: gtp.search(gview, keywords, top_k=params.top_k), repeats
        )

        # Proj characterizes only the cost of generating the projected
        # documents (paper Section 5.2.1): a full parse-and-project scan
        # of each serialized document.
        serialized = {doc: database.get(doc).serialized for doc in eview.qpts}
        proj_time, _ = timed(
            lambda: [
                project_serialized(qpt, serialized[doc])
                for doc, qpt in eview.qpts.items()
            ],
            repeats,
        )

        table.add_row(
            scale,
            baseline=baseline_time,
            gtp=gtp_time,
            proj=proj_time,
            efficient=efficient_time,
        )
    table.note(
        "paper shape: Efficient is ~an order of magnitude faster than the "
        "alternatives and grows roughly linearly with data size"
    )
    return table


def run_fig13b_module_comparison(
    scales: Optional[Sequence[int]] = None, repeats: int = 1
) -> ExperimentTable:
    """F13b: module-to-module comparison underlying Figure 13's claims.

    The paper's GTP series times only its structural joins + base accesses,
    and its Proj series only projected-document generation; the directly
    comparable module on our side is PDT generation.  This table isolates
    that comparison (Section 4's ">10x faster than PROJ" claim).
    """
    scales = list(scales or PARAMETER_TABLE["data_scale"])
    table = ExperimentTable(
        experiment_id="F13b",
        title="Pruned-document generation cost per strategy (seconds)",
        parameter="scale",
        columns=["gtp_joins", "proj_generation", "pdt_generation"],
    )
    for scale in scales:
        params = ExperimentParams(data_scale=scale)
        database = build_database(params)
        view_text = view_for_params(params)
        keywords = params.keywords()

        efficient = KeywordSearchEngine(database, enable_cache=False)
        eview = efficient.define_view("bench", view_text)
        timed(lambda: efficient.search(eview, keywords, top_k=params.top_k), repeats)
        pdt_time = efficient.last_timings.pdt

        gtp = GTPEngine(database)
        gview = gtp.define_view("bench", view_text)
        timed(lambda: gtp.search(gview, keywords, top_k=params.top_k), repeats)
        gtp_join_time = gtp.last_timings.pdt

        serialized = {doc: database.get(doc).serialized for doc in eview.qpts}
        proj_time, _ = timed(
            lambda: [
                project_serialized(qpt, serialized[doc])
                for doc, qpt in eview.qpts.items()
            ],
            repeats,
        )
        table.add_row(
            scale,
            gtp_joins=gtp_join_time,
            proj_generation=proj_time,
            pdt_generation=pdt_time,
        )
    table.note(
        "paper shape: index-only PDT generation beats structural joins and "
        "full-scan projection by roughly an order of magnitude"
    )
    return table


# -- Figure 14: module cost breakdown ---------------------------------------------


def run_fig14_module_cost(
    scales: Optional[Sequence[int]] = None, repeats: int = 1
) -> ExperimentTable:
    """Figure 14: PDT / Evaluator / Post-processing overhead vs data size."""
    scales = list(scales or PARAMETER_TABLE["data_scale"])
    table = ExperimentTable(
        experiment_id="F14",
        title="Cost of modules (seconds)",
        parameter="scale",
        columns=["pdt", "evaluator", "post_processing", "total"],
    )
    for scale in scales:
        params = ExperimentParams(data_scale=scale)
        elapsed, engine = _efficient_time(params, repeats)
        _breakdown_row(table, scale, engine, elapsed)
    table.note(
        "paper shape: PDT cost scales gracefully; the evaluator dominates as "
        "data grows; post-processing is negligible"
    )
    return table


# -- Figures 15-20: one-parameter sweeps -----------------------------------------


def _sweep(
    experiment_id: str,
    title: str,
    parameter: str,
    values: Iterable,
    repeats: int = 1,
) -> ExperimentTable:
    table = ExperimentTable(
        experiment_id=experiment_id,
        title=title,
        parameter=parameter,
        columns=["pdt", "evaluator", "post_processing", "total"],
    )
    for value in values:
        params = ExperimentParams().with_(**{parameter: value})
        elapsed, engine = _efficient_time(params, repeats)
        _breakdown_row(table, value, engine, elapsed)
    return table


def run_fig15_num_keywords(repeats: int = 1) -> ExperimentTable:
    """Figure 15: varying the number of keywords (1-5)."""
    table = _sweep(
        "F15",
        "Varying # of keywords (seconds)",
        "num_keywords",
        PARAMETER_TABLE["num_keywords"],
        repeats,
    )
    table.note("paper shape: mild growth — more inverted lists to read")
    return table


def run_fig16_keyword_selectivity(repeats: int = 1) -> ExperimentTable:
    """Figure 16: varying keyword selectivity (low/medium/high)."""
    table = _sweep(
        "F16",
        "Varying selectivity of keywords (seconds)",
        "keyword_selectivity",
        PARAMETER_TABLE["keyword_selectivity"],
        repeats,
    )
    table.note(
        "paper shape: run time increases slightly as selectivity decreases "
        "(longer inverted lists; 'low' = frequent terms)"
    )
    return table


def run_fig17_num_joins(repeats: int = 1) -> ExperimentTable:
    """Figure 17: varying the number of value joins (0-4)."""
    table = _sweep(
        "F17",
        "Varying # of joins (seconds)",
        "num_joins",
        PARAMETER_TABLE["num_joins"],
        repeats,
    )
    table.note(
        "paper shape: grows with joins; the largest step is 0 -> 1 (a second "
        "PDT plus a value join instead of a selection)"
    )
    return table


def run_fig18_join_selectivity(repeats: int = 1) -> ExperimentTable:
    """Figure 18: varying join selectivity (1X .. 0.1X)."""
    table = _sweep(
        "F18",
        "Varying the selectivity of joins (seconds)",
        "join_selectivity",
        PARAMETER_TABLE["join_selectivity"],
        repeats,
    )
    table.note("paper shape: mild growth as the selectivity decreases")
    return table


def run_fig19_nesting(repeats: int = 1) -> ExperimentTable:
    """Figure 19: varying the level of nestings (1-4)."""
    table = _sweep(
        "F19",
        "Varying the level of nestings (seconds)",
        "nesting_level",
        PARAMETER_TABLE["nesting_level"],
        repeats,
    )
    table.note(
        "paper shape: roughly linear in nesting level, evaluator share grows "
        "fastest"
    )
    return table


def run_fig20_topk(repeats: int = 1) -> ExperimentTable:
    """Figure 20: varying the number of results (K in top-K)."""
    table = _sweep(
        "F20",
        "Varying the number of results (seconds)",
        "top_k",
        PARAMETER_TABLE["top_k"],
        repeats,
    )
    table.note(
        "paper shape: flat — materializing extra winners is nearly free"
    )
    return table


# -- Section 5.2.3 'other results' -------------------------------------------------


def run_x1_element_size(repeats: int = 1) -> ExperimentTable:
    """X1: varying the average size of view elements (1X-5X)."""
    table = _sweep(
        "X1",
        "Varying avg. size of view elements (seconds)",
        "element_size",
        PARAMETER_TABLE["element_size"],
        repeats,
    )
    table.note(
        "paper shape: efficient and scalable as element size grows (content "
        "is pruned, so only index lists grow)"
    )
    return table


def run_x2_pdt_size(
    scales: Optional[Sequence[int]] = None,
) -> ExperimentTable:
    """X2: PDT size vs data size (pruning effectiveness; paper: ~2MB of 500MB)."""
    scales = list(scales or PARAMETER_TABLE["data_scale"])
    table = ExperimentTable(
        experiment_id="X2",
        title="PDT size vs data size (element counts)",
        parameter="scale",
        columns=["data_elements", "pdt_elements", "ratio_percent"],
    )
    for scale in scales:
        params = ExperimentParams(data_scale=scale)
        database = build_database(params)
        engine = KeywordSearchEngine(database, enable_cache=False)
        view = engine.define_view("bench", view_for_params(params))
        outcome = engine.search_detailed(
            view, params.keywords(), top_k=params.top_k
        )
        data_elements = sum(
            len(database.get(doc).store) for doc in view.qpts
        )
        pdt_elements = sum(p.node_count for p in outcome.pdts.values())
        table.add_row(
            scale,
            data_elements=data_elements,
            pdt_elements=pdt_elements,
            ratio_percent=100.0 * pdt_elements / data_elements,
        )
    table.note("paper shape: PDTs are a small fraction of the base data")
    return table


def measure_cold_path(
    params: ExperimentParams, rounds: int = 40
) -> dict[str, float]:
    """The cold-path trio at one parameter point, in milliseconds.

    ``legacy_ms`` / ``batched_ms``: one full cold ``build_skeleton``
    pass over the bench view's documents for the frozen pre-overhaul
    per-pattern path (:mod:`repro.core.pdt_legacy`) and the shipped
    batched/array-swept path — interleaved so CPU-frequency drift hits
    both sides equally, garbage collector paused, reported as the
    minimum (the :func:`repro.bench.harness.timed` statistic).
    ``snapshot_restore_ms``: restoring the same skeletons from a
    :class:`repro.core.snapshot.SkeletonStore` snapshot.  The single
    measurement protocol behind ``run_x7_cold_path``, the
    ``bench_report.py`` artifact and ``bench_x7_cold_path.py``'s
    acceptance check.
    """
    import gc
    import tempfile
    import time as _time

    from repro.core.pdt import build_skeleton
    from repro.core.pdt_legacy import legacy_build_skeleton
    from repro.core.snapshot import SkeletonStore

    database = build_database(params)
    engine = KeywordSearchEngine(database, enable_cache=False)
    view = engine.define_view("bench", view_for_params(params))

    def cold(build):
        for doc_name in view.document_names:
            build(view.qpts[doc_name], database.get(doc_name).path_index)

    for _ in range(3):
        cold(build_skeleton)
        cold(legacy_build_skeleton)
    batched_samples: list[float] = []
    legacy_samples: list[float] = []
    restore_samples: list[float] = []
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(rounds):
            start = _time.perf_counter()
            cold(build_skeleton)
            batched_samples.append(_time.perf_counter() - start)
            start = _time.perf_counter()
            cold(legacy_build_skeleton)
            legacy_samples.append(_time.perf_counter() - start)
        with tempfile.TemporaryDirectory() as tmp:
            store = SkeletonStore(tmp)
            pairs = []
            for doc_name in view.document_names:
                indexed = database.get(doc_name)
                qpt = view.qpts[doc_name]
                store.save(
                    indexed.fingerprint,
                    qpt.content_hash,
                    build_skeleton(qpt, indexed.path_index),
                )
                pairs.append((indexed.fingerprint, qpt.content_hash))
            for _ in range(rounds):
                start = _time.perf_counter()
                for fingerprint, qpt_hash in pairs:
                    store.load(fingerprint, qpt_hash)
                restore_samples.append(_time.perf_counter() - start)
    finally:
        if gc_was_enabled:
            gc.enable()
            gc.collect()
    legacy_ms = min(legacy_samples) * 1000.0
    batched_ms = min(batched_samples) * 1000.0
    return {
        "legacy_ms": legacy_ms,
        "batched_ms": batched_ms,
        "speedup": legacy_ms / batched_ms if batched_ms else float("inf"),
        "snapshot_restore_ms": min(restore_samples) * 1000.0,
    }


def run_x7_cold_path(
    scales: Optional[Sequence[int]] = None, repeats: int = 1
) -> ExperimentTable:
    """X7: the cold-path overhaul — legacy vs batched builds, snapshot
    restore (see :func:`measure_cold_path` for the protocol).

    The self-enforcing ≥3x acceptance check at scale 1 lives in
    ``benchmarks/bench_x7_cold_path.py``; this table records the
    trajectory across scales.
    """
    scales = list(scales or [1, 2])
    rounds = max(20, 20 * repeats)
    table = ExperimentTable(
        experiment_id="X7",
        title="Cold-path overhaul (milliseconds per cold skeleton set)",
        parameter="scale",
        columns=["legacy_ms", "batched_ms", "speedup", "snapshot_restore_ms"],
    )
    for scale in scales:
        numbers = measure_cold_path(
            ExperimentParams(data_scale=scale), rounds
        )
        table.add_row(scale, **numbers)
    table.note(
        "acceptance floor: batched >= 3x legacy at scale 1 "
        "(self-enforced by benchmarks/bench_x7_cold_path.py)"
    )
    return table


def _sharding_corpus(
    doc_count: int = 96, seed: int = 7
) -> tuple[dict[str, str], str, list[tuple[str, ...]]]:
    """Documents, a per-document-fragment view and cycled keyword sets.

    Sized to separate the two deployments by *cache capacity*, which is
    what corpus sharding actually buys on one machine: ``doc_count``
    ``(view, doc)`` skeleton keys swept cyclically against the single
    engine's 64-entry skeleton tier (8 slots per cache shard — the LRU
    worst case, every key evicted before its next use), while each of
    four shard executors owns ``doc_count / 4`` keys, comfortably inside
    its own tier.  Keyword sets are cycled so the PDT tier cannot mask
    the skeleton tier: the single engine's ``doc_count x len(sets)`` PDT
    keys thrash its 128-entry tier too, while a shard's slice fits.
    """
    import random as _random

    rng = _random.Random(seed)
    topics = [
        "xml", "query", "index", "search", "ranking", "views",
        "dewey", "cache", "stream", "shard", "keyword", "join",
    ]
    documents: dict[str, str] = {}
    for number in range(doc_count):
        books = []
        for _ in range(rng.randint(4, 8)):
            hot = rng.choice(topics)
            words = [rng.choice(topics) for _ in range(rng.randint(6, 30))]
            words += [hot] * rng.randint(0, 6)
            rng.shuffle(words)
            title = " ".join(rng.choice(topics) for _ in range(3))
            books.append(
                f"<book><title>{title}</title>"
                f"<body>{' '.join(words)}</body></book>"
            )
        documents[f"doc{number:03d}"] = f"<lib>{''.join(books)}</lib>"
    fragments = [
        f"(for $b in fn:doc({name})//book "
        f"return <hit>{{$b/title}}{{$b/body}}</hit>)"
        for name in sorted(documents)
    ]
    view_text = "(" + ",\n".join(fragments) + ")"
    keyword_sets: list[tuple[str, ...]] = [
        ("xml",),
        ("query", "index"),
        ("search",),
        ("ranking", "views"),
    ]
    return documents, view_text, keyword_sets


def measure_sharding(
    doc_count: int = 96,
    shard_count: int = 4,
    rounds: int = 8,
    top_k: int = 5,
) -> dict[str, float]:
    """Scatter-gather over shard executors vs one engine, in milliseconds.

    One sample is a full keyword-cycle sweep (every keyword set once).
    Both deployments are pre-warmed and measured interleaved with the
    garbage collector paused, minimum statistic — the protocol of
    :func:`measure_cold_path`.  Alongside the wall times the dict
    carries the streaming merge's counters summed over one sweep
    (``merge_candidates`` / ``merge_consumed`` / ``merge_pruned``), so
    the self-enforcing bench can check early termination actually cut
    the per-shard results consumed, not just that the clock was kind.
    """
    import gc
    import time as _time

    from repro.core.ingest import ingest_corpus

    documents, view_text, keyword_sets = _sharding_corpus(doc_count)

    database = XMLDatabase()
    for name in sorted(documents):
        database.load_document(name, documents[name])
    single = KeywordSearchEngine(database)
    view = single.define_view("v", view_text)
    single.warm_view(view)

    coordinator, _ = ingest_corpus(
        documents, {"v": view_text}, shard_count=shard_count
    )

    def single_sweep() -> None:
        for keywords in keyword_sets:
            single.search(view, keywords, top_k=top_k)

    def sharded_sweep() -> None:
        for keywords in keyword_sets:
            coordinator.search("v", keywords, top_k=top_k)

    try:
        # Steady state: both sides have served every keyword set once.
        single_sweep()
        sharded_sweep()
        single_samples: list[float] = []
        sharded_samples: list[float] = []
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            for _ in range(rounds):
                start = _time.perf_counter()
                single_sweep()
                single_samples.append(_time.perf_counter() - start)
                start = _time.perf_counter()
                sharded_sweep()
                sharded_samples.append(_time.perf_counter() - start)
        finally:
            if gc_was_enabled:
                gc.enable()
                gc.collect()
        candidates = consumed = pruned = 0
        for keywords in keyword_sets:
            outcome = coordinator.search_detailed(
                "v", keywords, top_k=top_k
            )
            candidates += outcome.merge_stats.candidates
            consumed += outcome.merge_stats.consumed
            pruned += outcome.merge_stats.pruned
    finally:
        coordinator.close()
    single_ms = min(single_samples) * 1000.0
    sharded_ms = min(sharded_samples) * 1000.0
    return {
        "single_ms": single_ms,
        "sharded_ms": sharded_ms,
        "speedup": single_ms / sharded_ms if sharded_ms else float("inf"),
        "merge_candidates": float(candidates),
        "merge_consumed": float(consumed),
        "merge_pruned": float(pruned),
    }


def run_x8_sharding(repeats: int = 1) -> ExperimentTable:
    """X8: corpus sharding — per-shard executors + streaming top-k merge.

    The self-enforcing ≥2x acceptance check at 4 shards lives in
    ``benchmarks/bench_x8_sharding.py``; this table records the
    trajectory across shard counts (1 is the degenerate case: one
    executor with the same cache budget as the single engine, so its
    row shows the coordinator's overhead, not a speedup).
    """
    rounds = max(6, 6 * repeats)
    table = ExperimentTable(
        experiment_id="X8",
        title="Corpus sharding (ms per keyword-cycle sweep, 96 documents)",
        parameter="shards",
        columns=[
            "single_ms",
            "sharded_ms",
            "speedup",
            "merge_consumed",
            "merge_candidates",
            "merge_pruned",
        ],
    )
    for shard_count in (1, 2, 4):
        numbers = measure_sharding(shard_count=shard_count, rounds=rounds)
        table.add_row(shard_count, **numbers)
    table.note(
        "acceptance floor: 4 shards >= 2x the single executor, with the "
        "streaming merge consuming fewer results than the shards offered "
        "(self-enforced by benchmarks/bench_x8_sharding.py)"
    )
    return table


def measure_updates(
    scale: int = 1,
    rounds: int = 8,
    top_k: int = 5,
) -> dict[str, float]:
    """One small subtree edit: delta maintenance vs the invalidation storm.

    Two engines share ONE freshly generated INEX database — never the
    ``_DB_CACHE`` copy, because updates mutate the database in place and
    would poison every other experiment's cached build:

    * **delta** — the default engine: the update hook migrates patchable
      skeletons across the generation bump and re-warms the view;
    * **storm** — ``delta_maintenance=False``: correctness comes from the
      generation-keyed self-invalidation alone, so every edit strands the
      entire cached state and the next query pays the full cold build
      (the pre-delta write-path behavior).

    Each round applies one patchable edit (alternating insert/delete of a
    ``<zaux>`` aside under the articles root — a tag no view references),
    resets the probe counters, and times the next query on each engine.
    Minimum statistic over interleaved rounds with the garbage collector
    paused.  Alongside the wall times the dict reports what survived:
    warm-tier hit rounds and path-index probes per side, so the
    self-enforcing bench can assert the speedup came from surviving cache
    tiers and not a kind clock.
    """
    import gc
    import time as _time

    from repro.workloads.views import authors_articles_view

    database = generate_inex_database(INEXConfig(scale=scale))
    view_text = authors_articles_view()
    keywords = KEYWORDS_BY_SELECTIVITY["medium"]

    delta_engine = KeywordSearchEngine(database)
    delta_view = delta_engine.define_view("v", view_text)
    storm_engine = KeywordSearchEngine(database, delta_maintenance=False)
    storm_view = storm_engine.define_view("v", view_text)

    delta_engine.search(delta_view, keywords, top_k=top_k)
    storm_engine.search(storm_view, keywords, top_k=top_k)

    def path_probes() -> int:
        return sum(
            database.get(name).path_index.probe_count
            for name in database.document_names()
        )

    root_id = database.get("articles.xml").document.root.dewey
    delta_samples: list[float] = []
    storm_samples: list[float] = []
    delta_warm_rounds = storm_miss_rounds = 0
    delta_probes = storm_probes = 0
    inserted = None
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(rounds):
            if inserted is None:
                edit = database.insert_subtree(
                    "articles.xml", root_id, "<zaux>editorial aside</zaux>"
                )
                inserted = edit.edit_id
            else:
                database.delete_subtree("articles.xml", inserted)
                inserted = None
            database.reset_access_counters()
            start = _time.perf_counter()
            delta_out = delta_engine.search_detailed(
                delta_view, keywords, top_k=top_k
            )
            delta_samples.append(_time.perf_counter() - start)
            delta_probes += path_probes()
            if delta_out.evaluated_hit or delta_out.cache_hits.get(
                "articles.xml"
            ) in ("pdt", "skeleton", "snapshot"):
                delta_warm_rounds += 1
            database.reset_access_counters()
            start = _time.perf_counter()
            storm_out = storm_engine.search_detailed(
                storm_view, keywords, top_k=top_k
            )
            storm_samples.append(_time.perf_counter() - start)
            storm_probes += path_probes()
            if storm_out.cache_hits.get("articles.xml") == "miss":
                storm_miss_rounds += 1
    finally:
        if gc_was_enabled:
            gc.enable()
            gc.collect()
    delta_ms = min(delta_samples) * 1000.0
    storm_ms = min(storm_samples) * 1000.0
    return {
        "delta_ms": delta_ms,
        "storm_ms": storm_ms,
        "speedup": storm_ms / delta_ms if delta_ms else float("inf"),
        "delta_warm_rounds": float(delta_warm_rounds),
        "storm_miss_rounds": float(storm_miss_rounds),
        "delta_path_probes": float(delta_probes),
        "storm_path_probes": float(storm_probes),
        "rounds": float(rounds),
    }


def run_x9_updates(repeats: int = 1) -> ExperimentTable:
    """X9: sub-document updates — delta maintenance vs invalidation storm.

    The self-enforcing ≥5x acceptance check lives in
    ``benchmarks/bench_x9_updates.py``; this table records the gap at two
    database scales.
    """
    rounds = max(6, 6 * repeats)
    table = ExperimentTable(
        experiment_id="X9",
        title="Sub-document updates (ms per post-edit query)",
        parameter="scale",
        columns=[
            "delta_ms",
            "storm_ms",
            "speedup",
            "delta_warm_rounds",
            "storm_miss_rounds",
            "delta_path_probes",
            "storm_path_probes",
            "rounds",
        ],
    )
    for scale in (1, 2):
        numbers = measure_updates(scale=scale, rounds=rounds)
        table.add_row(scale, **numbers)
    table.note(
        "acceptance floor: after one patchable subtree edit the "
        "delta-maintained engine answers >= 5x faster than the "
        "storm baseline's cold rebuild, with zero path-index probes "
        "(self-enforced by benchmarks/bench_x9_updates.py)"
    )
    return table


def _repetitive_corpus(
    doc_count: int, items: int, pool: Sequence[str]
) -> dict[str, str]:
    """``doc_count`` structurally identical feed documents.

    Every document carries the same ``<feed><entry>...`` element tree —
    only the text values differ per document — which is the shape a
    syndicated corpus's per-source mirrors have and the workload DAG
    compression exists for.  Every document contains every keyword of
    ``pool``, so rotating the probe keyword never short-circuits the
    annotation path.
    """
    docs: dict[str, str] = {}
    for d in range(doc_count):
        parts = ["<feed>"]
        for i in range(items):
            word = pool[i % len(pool)]
            partner = pool[(i + d) % len(pool)]
            parts.append(
                "<entry>"
                f"<title>{word} brief {d}-{i}</title>"
                f"<body>{partner} article text {d * items + i}</body>"
                "</entry>"
            )
        parts.append("</feed>")
        docs[f"feed{d:02d}.xml"] = "".join(parts)
    return docs


def _feed_view(name: str) -> str:
    return (
        f"for $e in fn:doc({name})/feed/entry\n"
        "return <hit>{ $e/title }</hit>"
    )


def measure_memory(
    doc_count: int = 12,
    items: int = 48,
    rounds: int = 6,
    top_k: int = 5,
) -> dict[str, float]:
    """DAG compression + mmap snapshots vs the eager representation.

    Three claims, one repetitive corpus (:func:`_repetitive_corpus`):

    * **memory** — summed skeleton-tier ``memory_bytes`` of a
      ``dag_compression=True`` engine (shared shape table included)
      against the same tier holding eager :class:`PDTSkeleton` objects;
    * **warm latency** — skeleton-warm queries (a fresh keyword every
      round, so the PDT tier never serves and the annotation merge-join
      actually runs over each representation), interleaved minimums with
      the garbage collector paused;
    * **restore** — loading every snapshot of the corpus through
      ``SkeletonStore(mmap_mode=True)`` (header-validated page mapping)
      against the eager parse-everything load.

    Alongside the wall times the dict carries the deterministic
    evidence: shape-table sharing counters, exact ranked-outcome
    equality between the two engines, and byte equality between the
    mapped and eager restore payloads — the self-enforcing bench
    asserts these on every attempt.
    """
    import gc
    import tempfile
    import time as _time
    from pathlib import Path

    from repro.core.snapshot import SkeletonStore

    pool = [f"mem{i:02d}" for i in range(max(rounds + 3, 8))]
    docs = _repetitive_corpus(doc_count, items, pool)
    names = sorted(docs)

    def build(dag: bool, store: Optional[SkeletonStore] = None):
        database = XMLDatabase()
        for name in names:
            database.load_document(name, docs[name])
        engine = KeywordSearchEngine(
            database, dag_compression=dag, snapshot_store=store
        )
        views = [
            engine.define_view(f"v{i}", _feed_view(name))
            for i, name in enumerate(names)
        ]
        for view in views:
            engine.warm_view(view)
        return engine, views

    compressed_engine, compressed_views = build(True)
    eager_engine, eager_views = build(False)

    compressed_bytes = (
        compressed_engine.cache.skeletons.memory_bytes
        + compressed_engine.shape_table.memory_bytes()
    )
    eager_bytes = eager_engine.cache.skeletons.memory_bytes
    shape_stats = compressed_engine.shape_table.stats()

    # Exact ranked-outcome equality — timing a wrong answer means nothing.
    identical = 1.0
    probe = [pool[0], pool[1]]
    for cview, eview in zip(compressed_views, eager_views):
        cout = compressed_engine.search_detailed(cview, probe, top_k=top_k)
        eout = eager_engine.search_detailed(eview, probe, top_k=top_k)
        if [(r.rank, r.score, r.scored.index) for r in cout.results] != [
            (r.rank, r.score, r.scored.index) for r in eout.results
        ]:
            identical = 0.0

    compressed_samples: list[float] = []
    eager_samples: list[float] = []
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for r in range(rounds):
            keywords = [pool[(r + 3) % len(pool)]]
            start = _time.perf_counter()
            for view in compressed_views:
                compressed_engine.search(view, keywords, top_k=top_k)
            compressed_samples.append(_time.perf_counter() - start)
            start = _time.perf_counter()
            for view in eager_views:
                eager_engine.search(view, keywords, top_k=top_k)
            eager_samples.append(_time.perf_counter() - start)
    finally:
        if gc_was_enabled:
            gc.enable()
            gc.collect()

    with tempfile.TemporaryDirectory() as raw:
        store_root = Path(raw) / "snapshots"
        builder, _ = build(False, store=SkeletonStore(store_root))
        entries = []
        for view in builder._views.values():
            for doc_name, qpt in view.qpts.items():
                entries.append(
                    (
                        builder.database.get(doc_name).fingerprint,
                        qpt.content_hash,
                    )
                )
        eager_store = SkeletonStore(store_root)
        mapped_store = SkeletonStore(store_root, mmap_mode=True)
        bit_identical = 1.0
        for fingerprint, qpt_hash in entries:
            eager_skel = eager_store.load(fingerprint, qpt_hash)
            mapped_skel = mapped_store.load(fingerprint, qpt_hash)
            if (
                eager_skel is None
                or mapped_skel is None
                or eager_skel.to_bytes() != mapped_skel.to_bytes()
            ):
                bit_identical = 0.0
        eager_restore: list[float] = []
        mapped_restore: list[float] = []
        gc.disable()
        try:
            for _ in range(rounds):
                start = _time.perf_counter()
                for fingerprint, qpt_hash in entries:
                    eager_store.load(fingerprint, qpt_hash)
                eager_restore.append(_time.perf_counter() - start)
                start = _time.perf_counter()
                for fingerprint, qpt_hash in entries:
                    mapped_store.load(fingerprint, qpt_hash)
                mapped_restore.append(_time.perf_counter() - start)
        finally:
            if gc_was_enabled:
                gc.enable()
                gc.collect()

    warm_compressed_ms = min(compressed_samples) * 1000.0
    warm_eager_ms = min(eager_samples) * 1000.0
    eager_restore_ms = min(eager_restore) * 1000.0
    mapped_restore_ms = min(mapped_restore) * 1000.0
    return {
        "compressed_kib": compressed_bytes / 1024.0,
        "eager_kib": eager_bytes / 1024.0,
        "memory_reduction": (
            eager_bytes / compressed_bytes if compressed_bytes else float("inf")
        ),
        "warm_compressed_ms": warm_compressed_ms,
        "warm_eager_ms": warm_eager_ms,
        "warm_ratio": (
            warm_compressed_ms / warm_eager_ms
            if warm_eager_ms
            else float("inf")
        ),
        "eager_restore_ms": eager_restore_ms,
        "mmap_restore_ms": mapped_restore_ms,
        "restore_speedup": (
            eager_restore_ms / mapped_restore_ms
            if mapped_restore_ms
            else float("inf")
        ),
        "shapes": float(shape_stats["shapes"]),
        "shape_hits": float(shape_stats["hits"]),
        "skeletons": float(len(entries)),
        "identical_results": identical,
        "snapshot_bit_identical": bit_identical,
    }


def run_x10_memory(repeats: int = 1) -> ExperimentTable:
    """X10: memory at scale — DAG compression and zero-copy restores.

    The self-enforcing floors (≥3x skeleton-tier reduction, warm ratio
    ≤1.25x, mmap restore ≥2x) live in
    ``benchmarks/bench_x10_memory.py``; this table records the gap at
    two corpus widths.
    """
    rounds = max(5, 5 * repeats)
    table = ExperimentTable(
        experiment_id="X10",
        title="Memory at scale (skeleton tier KiB, warm ms, restore ms)",
        parameter="doc_count",
        columns=[
            "compressed_kib",
            "eager_kib",
            "memory_reduction",
            "warm_compressed_ms",
            "warm_eager_ms",
            "warm_ratio",
            "eager_restore_ms",
            "mmap_restore_ms",
            "restore_speedup",
            "shapes",
            "shape_hits",
            "skeletons",
            "identical_results",
            "snapshot_bit_identical",
        ],
    )
    for doc_count in (8, 16):
        numbers = measure_memory(doc_count=doc_count, rounds=rounds)
        table.add_row(doc_count, **numbers)
    table.note(
        "acceptance floors: >= 3x skeleton-tier byte reduction on the "
        "repetitive corpus, skeleton-warm latency <= 1.25x of the "
        "uncompressed engine, mmap restore >= 2x faster than the eager "
        "parse (self-enforced by benchmarks/bench_x10_memory.py)"
    )
    return table


def measure_fleet(
    doc_count: int = 6,
    items: int = 768,
    rounds: int = 6,
    top_k: int = 5,
) -> dict[str, float]:
    """Peer-warmed first contact vs the local cold build, in milliseconds.

    The unit under test is skeleton *acquisition* — the only part of
    first contact the networked tier changes (the protocol of
    :func:`measure_cold_path`, across hosts):

    * **cold_build_ms** — one full ``build_skeleton`` pass over the
      corpus views' documents from the path indexes;
    * **fleet_fetch_ms** — the same skeleton set acquired through a
      :class:`~repro.core.snapshot_net.NetworkedSkeletonStore` with a
      *fresh, empty* local directory each round: every load misses
      locally, fetches the v2 wire bytes over HTTP from a live peer
      process' serving endpoint, validates, writes through and serves
      the mmap-mode restore.

    Both sides are measured interleaved with the garbage collector
    paused, minimum statistic.  Alongside the wall times the dict
    carries deterministic evidence that the fast path really was the
    network path: the fetch counters (``fetched`` must equal targets x
    sweeps with zero ``fetch_failed`` / ``fell_back``), a full
    engine-level warm-up through the networked store (every target
    ``"snapshot"``, **zero** path-index probes) and exact
    ranked-outcome equality between the peer-warmed engine and the
    peer itself.
    """
    import gc
    import tempfile
    import time as _time
    from pathlib import Path

    from repro.core.pdt import build_skeleton
    from repro.core.snapshot import SkeletonStore
    from repro.core.snapshot_net import (
        HTTPSnapshotPeer,
        NetworkedSkeletonStore,
    )
    from repro.serving import BackgroundHTTPServing, ServerConfig

    pool = [f"fleet{i:02d}" for i in range(8)]
    docs = _repetitive_corpus(doc_count, items, pool)
    names = sorted(docs)

    def fresh_database() -> XMLDatabase:
        database = XMLDatabase()
        for name in names:
            database.load_document(name, docs[name])
        return database

    with tempfile.TemporaryDirectory() as raw:
        tmp = Path(raw)
        # The warm peer: cold-builds once, persists every skeleton,
        # serves /snapshots/<key> over its HTTP endpoint.
        peer_engine = KeywordSearchEngine(
            fresh_database(), snapshot_store=SkeletonStore(tmp / "peer")
        )
        peer_views = [
            peer_engine.define_view(f"v{i}", _feed_view(name))
            for i, name in enumerate(names)
        ]
        for view in peer_views:
            peer_engine.warm_view(view)
        serving = BackgroundHTTPServing(
            peer_engine, ServerConfig(workers=2)
        )
        serving.start()
        try:
            # The cold fleet member: identical content, no warmth.
            database = fresh_database()
            member = KeywordSearchEngine(database)
            views = [
                member.define_view(f"v{i}", _feed_view(name))
                for i, name in enumerate(names)
            ]
            keys = [
                (
                    database.get(name).fingerprint,
                    views[i].qpts[name].content_hash,
                )
                for i, name in enumerate(names)
            ]

            def cold_sweep() -> None:
                for i, name in enumerate(names):
                    build_skeleton(
                        views[i].qpts[name], database.get(name).path_index
                    )

            sweeps = 0
            fetched = fetch_failed = fell_back = 0

            def fleet_sweep(local_dir: Path) -> None:
                nonlocal sweeps, fetched, fetch_failed, fell_back
                net = NetworkedSkeletonStore(
                    SkeletonStore(local_dir, mmap_mode=True),
                    HTTPSnapshotPeer(serving.url, timeout=30.0),
                )
                for fingerprint, qpt_hash in keys:
                    if net.load(fingerprint, qpt_hash) is None:
                        raise AssertionError(
                            "fleet fetch fell back mid-measurement"
                        )
                counts = net.net_stats()
                sweeps += 1
                fetched += counts["fetched"]
                fetch_failed += counts["fetch_failed"]
                fell_back += counts["fell_back"]

            cold_sweep()
            fleet_sweep(tmp / "warmup")
            cold_samples: list[float] = []
            fleet_samples: list[float] = []
            gc_was_enabled = gc.isenabled()
            gc.disable()
            try:
                for r in range(rounds):
                    start = _time.perf_counter()
                    cold_sweep()
                    cold_samples.append(_time.perf_counter() - start)
                    local_dir = tmp / f"member{r}"
                    start = _time.perf_counter()
                    fleet_sweep(local_dir)
                    fleet_samples.append(_time.perf_counter() - start)
            finally:
                if gc_was_enabled:
                    gc.enable()
                    gc.collect()

            # End-to-end evidence: a member engine warmed *through* the
            # networked store restores every target with zero probes
            # and ranks exactly like the peer.
            evidence_db = fresh_database()
            evidence_store = NetworkedSkeletonStore(
                SkeletonStore(tmp / "evidence", mmap_mode=True),
                HTTPSnapshotPeer(serving.url, timeout=30.0),
            )
            evidence = KeywordSearchEngine(
                evidence_db, snapshot_store=evidence_store
            )
            evidence_views = [
                evidence.define_view(f"v{i}", _feed_view(name))
                for i, name in enumerate(names)
            ]
            evidence_db.reset_access_counters()
            restored = 1.0
            for view in evidence_views:
                outcomes = evidence.warm_view(view)
                if set(outcomes.values()) != {"snapshot"}:
                    restored = 0.0
            probes = float(
                sum(
                    evidence_db.get(name).path_index.probe_count
                    for name in names
                )
            )
            identical = 1.0
            probe_keywords = [pool[0], pool[1]]
            for fleet_view, peer_view in zip(evidence_views, peer_views):
                fleet_out = evidence.search_detailed(
                    fleet_view, probe_keywords, top_k=top_k
                )
                peer_out = peer_engine.search_detailed(
                    peer_view, probe_keywords, top_k=top_k
                )
                if [
                    (r.rank, r.score, r.scored.index)
                    for r in fleet_out.results
                ] != [
                    (r.rank, r.score, r.scored.index)
                    for r in peer_out.results
                ]:
                    identical = 0.0
        finally:
            serving.stop()

    cold_ms = min(cold_samples) * 1000.0
    fleet_ms = min(fleet_samples) * 1000.0
    return {
        "cold_build_ms": cold_ms,
        "fleet_fetch_ms": fleet_ms,
        "speedup": cold_ms / fleet_ms if fleet_ms else float("inf"),
        "targets": float(len(keys)),
        "fetched": float(fetched),
        "fetch_failed": float(fetch_failed),
        "fell_back": float(fell_back),
        "expected_fetches": float(sweeps * len(keys)),
        "snapshot_restored": restored,
        "path_probes": probes,
        "identical_results": identical,
    }


def run_x11_fleet(repeats: int = 1) -> ExperimentTable:
    """X11: fleet serving — peer-warmed first contact over HTTP.

    The self-enforcing floor (peer-warmed skeleton acquisition >= 3x
    faster than the local cold build, with the counters proving the
    bytes really crossed the wire) lives in
    ``benchmarks/bench_x11_fleet.py``; this table records the gap at
    two document sizes — the fixed per-fetch HTTP cost amortizes as
    documents grow, the build cost does not.
    """
    rounds = max(6, 6 * repeats)
    table = ExperimentTable(
        experiment_id="X11",
        title="Fleet serving (peer-warmed first contact, milliseconds)",
        parameter="items",
        columns=[
            "cold_build_ms",
            "fleet_fetch_ms",
            "speedup",
            "targets",
            "fetched",
            "fetch_failed",
            "fell_back",
            "expected_fetches",
            "snapshot_restored",
            "path_probes",
            "identical_results",
        ],
    )
    for items in (256, 768):
        numbers = measure_fleet(items=items, rounds=rounds)
        table.add_row(items, **numbers)
    table.note(
        "acceptance floor: peer-warmed first contact >= 3x faster than "
        "the local cold build at items=768, zero fetch failures and "
        "fallbacks, warm-up fully restored with zero path probes "
        "(self-enforced by benchmarks/bench_x11_fleet.py)"
    )
    return table


def measure_chaos(
    doc_count: int = 48,
    shard_count: int = 4,
    rounds: int = 6,
    top_k: int = 5,
) -> dict[str, float]:
    """Degraded-mode serving under a hard single-shard outage.

    The protocol exercises the full failure-domain story on one
    coordinator (``partial_results=True`` with a quarantining
    :class:`~repro.core.health.FleetHealth` on an injected clock) over
    the cache-thrashing corpus of :func:`_sharding_corpus`:

    1. **healthy** — seeded :class:`~repro.core.faults.FaultInjector`
       armed on ``shard0.collect`` but *disabled*; per-query p50 over
       ``rounds`` keyword-cycle sweeps;
    2. **outage** — injector enabled (every shard-0 statistics call
       errors).  Every query must come back as a degraded-flagged
       outcome missing exactly shard 0 — the dict counts untyped
       exceptions, unflagged responses, and whether quarantine engaged
       (after the breaker trips, shard 0 is skipped without a call);
       per-query p50 again;
    3. **recovery** — injector disabled, the injected clock jumped past
       the quarantine cooldown.  The half-open probe must heal shard 0
       and every keyword set's outcome must be *bit-identical* (exact
       ``==`` on idf floats, scores, indexes and serialized XML) to a
       pristine coordinator that never saw a fault.

    Wall times are measured with the garbage collector paused, median
    statistic (p50 is the availability claim, not a best case).
    """
    import gc
    import statistics
    import time as _time

    from repro.core.faults import FAULT_ERROR, FaultInjector, FaultPlan
    from repro.core.health import FleetHealth
    from repro.errors import ReproError
    from repro.core.sharding import (
        CorpusCoordinator,
        ShardExecutor,
        ShardPlan,
    )

    documents, view_text, keyword_sets = _sharding_corpus(doc_count)
    names = sorted(documents)
    plan = ShardPlan.from_assignments(
        {name: i % shard_count for i, name in enumerate(names)}, shard_count
    )

    def build(injector, health):
        executors = [
            ShardExecutor(i, fault_injector=injector)
            for i in range(shard_count)
        ]
        for name in names:
            executors[plan.shard_of(name)].load_document(
                name, documents[name]
            )
        coordinator = CorpusCoordinator(
            executors,
            plan,
            partial_results=injector is not None,
            health=health,
        )
        coordinator.define_view("v", view_text)
        return coordinator

    def canonical(outcome) -> tuple:
        return (
            outcome.degraded,
            outcome.missing_shards,
            outcome.view_size,
            outcome.matching_count,
            tuple(sorted(outcome.idf.items())),
            tuple((r.rank, r.score, r.scored.index) for r in outcome.results),
            tuple(r.to_xml() for r in outcome.results),
        )

    clock = [0.0]
    health = FleetHealth(
        shard_count,
        failure_threshold=2,
        reset_after=5.0,
        clock=lambda: clock[0],
    )
    injector = FaultInjector(
        FaultPlan.single(7, "shard0.collect", FAULT_ERROR)
    )
    injector.disable()
    chaos = build(injector, health)
    pristine = build(None, None)
    try:
        # Steady state before any clock starts.
        for keywords in keyword_sets:
            chaos.search("v", keywords, top_k=top_k)
            pristine.search("v", keywords, top_k=top_k)

        def timed_sweeps() -> list[float]:
            samples: list[float] = []
            gc_was_enabled = gc.isenabled()
            gc.disable()
            try:
                for _ in range(rounds):
                    for keywords in keyword_sets:
                        start = _time.perf_counter()
                        chaos.search_detailed("v", keywords, top_k=top_k)
                        samples.append(_time.perf_counter() - start)
            finally:
                if gc_was_enabled:
                    gc.enable()
                    gc.collect()
            return samples

        healthy_samples = timed_sweeps()

        # Outage: the availability sweep is counted un-timed first (the
        # claim is typed behaviour, not the clock), then timed.
        injector.enable()
        queries = degraded_flagged = untyped = unflagged = 0
        for _ in range(rounds):
            for keywords in keyword_sets:
                queries += 1
                try:
                    outcome = chaos.search_detailed(
                        "v", keywords, top_k=top_k
                    )
                except ReproError:
                    unflagged += 1  # typed, but the shard loss escaped
                except Exception:  # noqa: BLE001 — the counted claim
                    untyped += 1
                else:
                    if outcome.degraded and outcome.missing_shards == (0,):
                        degraded_flagged += 1
                    else:
                        unflagged += 1
        quarantined = 1.0 if 0 in health.quarantined() else 0.0
        degraded_samples = timed_sweeps()

        # Recovery: faults clear, cooldown elapses, the probe heals.
        injector.disable()
        clock[0] += 5.0
        recovered = 1.0
        for keywords in keyword_sets:
            out = chaos.search_detailed("v", keywords, top_k=top_k)
            ref = pristine.search_detailed("v", keywords, top_k=top_k)
            if canonical(out) != canonical(ref):
                recovered = 0.0
        healed = 1.0 if health.quarantined() == () else 0.0
    finally:
        chaos.close()
        pristine.close()

    healthy_p50 = statistics.median(healthy_samples) * 1000.0
    degraded_p50 = statistics.median(degraded_samples) * 1000.0
    return {
        "healthy_p50_ms": healthy_p50,
        "degraded_p50_ms": degraded_p50,
        "degraded_over_healthy": (
            degraded_p50 / healthy_p50 if healthy_p50 else float("inf")
        ),
        "outage_queries": float(queries),
        "degraded_flagged": float(degraded_flagged),
        "availability": (
            degraded_flagged / queries if queries else 0.0
        ),
        "unflagged_responses": float(unflagged),
        "untyped_errors": float(untyped),
        "quarantine_engaged": quarantined,
        "quarantine_healed": healed,
        "recovered_identical": recovered,
        "injected_faults": float(len(injector.schedule())),
    }


def run_x12_chaos(repeats: int = 1) -> ExperimentTable:
    """X12: failure domains — degraded serving under a one-shard outage.

    The self-enforcing floors (100% degraded-flagged availability with
    zero untyped errors, degraded p50 <= 1.5x healthy p50, bit-identical
    post-recovery outcomes) live in ``benchmarks/bench_x12_chaos.py``;
    this table records the degraded-over-healthy latency ratio across
    fleet widths — losing 1-of-2 shards halves the work, losing 1-of-4
    trims a quarter, so the ratio should sit *below* 1 once quarantine
    stops the coordinator from even calling the dead shard.
    """
    rounds = max(6, 6 * repeats)
    table = ExperimentTable(
        experiment_id="X12",
        title="Failure domains (one shard hard-failed, ms per query)",
        parameter="shards",
        columns=[
            "healthy_p50_ms",
            "degraded_p50_ms",
            "degraded_over_healthy",
            "availability",
            "untyped_errors",
            "quarantine_engaged",
            "recovered_identical",
            "injected_faults",
        ],
    )
    for shard_count in (2, 4):
        numbers = measure_chaos(shard_count=shard_count, rounds=rounds)
        table.add_row(
            shard_count,
            **{k: numbers[k] for k in table.columns},
        )
    table.note(
        "acceptance floors: availability 1.0 with zero untyped errors, "
        "degraded p50 <= 1.5x healthy p50, quarantine engaged and healed, "
        "post-recovery outcomes bit-identical to a never-failed "
        "coordinator (self-enforced by benchmarks/bench_x12_chaos.py)"
    )
    return table


ALL_EXPERIMENTS = {
    "T1": run_params_table,
    "F13": run_fig13_data_size,
    "F13b": run_fig13b_module_comparison,
    "F14": run_fig14_module_cost,
    "F15": run_fig15_num_keywords,
    "F16": run_fig16_keyword_selectivity,
    "F17": run_fig17_num_joins,
    "F18": run_fig18_join_selectivity,
    "F19": run_fig19_nesting,
    "F20": run_fig20_topk,
    "X1": run_x1_element_size,
    "X2": run_x2_pdt_size,
    "X7": run_x7_cold_path,
    "X8": run_x8_sharding,
    "X9": run_x9_updates,
    "X10": run_x10_memory,
    "X11": run_x11_fleet,
    "X12": run_x12_chaos,
}
