"""``python -m repro.bench``: run every experiment and print the series.

Options::

    python -m repro.bench                 # all experiments, default scales
    python -m repro.bench F13 F14         # a subset
    python -m repro.bench --repeats 3     # more timing repeats
    python -m repro.bench --markdown out.md   # dump markdown tables
"""

from __future__ import annotations

import argparse
import inspect
import sys

from repro.bench.experiments import ALL_EXPERIMENTS


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's evaluation tables/figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="ID",
        help=f"experiment ids to run (default: all of {', '.join(ALL_EXPERIMENTS)})",
    )
    parser.add_argument("--repeats", type=int, default=1)
    parser.add_argument(
        "--markdown", metavar="PATH", help="also write markdown tables to PATH"
    )
    args = parser.parse_args(argv)

    selected = args.experiments or list(ALL_EXPERIMENTS)
    unknown = [e for e in selected if e not in ALL_EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiment ids: {', '.join(unknown)}")

    tables = []
    for experiment_id in selected:
        runner = ALL_EXPERIMENTS[experiment_id]
        kwargs = {}
        if "repeats" in inspect.signature(runner).parameters:
            kwargs["repeats"] = args.repeats
        table = runner(**kwargs)
        tables.append(table)
        print(table.to_text())
        print()

    if args.markdown:
        with open(args.markdown, "w") as handle:
            for table in tables:
                handle.write(table.to_markdown())
                handle.write("\n")
        print(f"markdown written to {args.markdown}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
