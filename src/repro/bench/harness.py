"""Small experiment-table harness for the paper's figures.

Each experiment produces an :class:`ExperimentTable` — named columns, one
row per parameter value — which prints in a fixed-width layout mirroring
the series the paper plots, and serializes to markdown for EXPERIMENTS.md.
"""

from __future__ import annotations

import gc
import time
from dataclasses import dataclass, field
from typing import Callable, Sequence


def timed(fn: Callable[[], object], repeats: int = 1) -> tuple[float, object]:
    """Run ``fn`` ``repeats`` times; return (best wall-clock seconds, result).

    The paper reports the average of five runs; at simulator scale the
    minimum of a few runs with the garbage collector paused is the
    lower-noise statistic, and relative shapes are what we compare.
    """
    best = float("inf")
    result: object = None
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(max(1, repeats)):
            start = time.perf_counter()
            result = fn()
            elapsed = time.perf_counter() - start
            best = min(best, elapsed)
    finally:
        if gc_was_enabled:
            gc.enable()
            gc.collect()
    return best, result


@dataclass
class Row:
    label: str
    values: dict[str, float | int | str]


@dataclass
class ExperimentTable:
    """A printable experiment result (one figure/table of the paper)."""

    experiment_id: str
    title: str
    parameter: str
    columns: list[str]
    rows: list[Row] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, label, **values) -> None:
        self.rows.append(Row(label=str(label), values=values))

    def note(self, text: str) -> None:
        self.notes.append(text)

    # -- access helpers (used by tests and shape assertions) ---------------------

    def column(self, name: str) -> list[float]:
        return [float(row.values[name]) for row in self.rows]

    def labels(self) -> list[str]:
        return [row.label for row in self.rows]

    # -- rendering ---------------------------------------------------------------

    def _formatted(self, value) -> str:
        if isinstance(value, float):
            return f"{value:.4f}"
        return str(value)

    def to_text(self) -> str:
        width = max(12, max((len(c) for c in self.columns), default=12) + 2)
        label_width = max(
            len(self.parameter) + 2,
            max((len(row.label) for row in self.rows), default=8) + 2,
        )
        lines = [f"== {self.experiment_id}: {self.title} =="]
        header = self.parameter.ljust(label_width) + "".join(
            c.rjust(width) for c in self.columns
        )
        lines.append(header)
        lines.append("-" * len(header))
        for row in self.rows:
            cells = "".join(
                self._formatted(row.values.get(c, "")).rjust(width)
                for c in self.columns
            )
            lines.append(row.label.ljust(label_width) + cells)
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)

    def to_markdown(self) -> str:
        lines = [
            f"### {self.experiment_id}: {self.title}",
            "",
            "| " + self.parameter + " | " + " | ".join(self.columns) + " |",
            "|" + "---|" * (len(self.columns) + 1),
        ]
        for row in self.rows:
            cells = " | ".join(
                self._formatted(row.values.get(c, "")) for c in self.columns
            )
            lines.append(f"| {row.label} | {cells} |")
        for note in self.notes:
            lines.append(f"\n*{note}*")
        lines.append("")
        return "\n".join(lines)


def speedup(slow: Sequence[float], fast: Sequence[float]) -> list[float]:
    """Element-wise ratio slow/fast (guards zero denominators)."""
    return [s / f if f > 0 else float("inf") for s, f in zip(slow, fast)]
