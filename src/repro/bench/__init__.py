"""Benchmark harness: one experiment per table/figure of the evaluation.

``python -m repro.bench`` runs every experiment and prints the paper-style
series; ``benchmarks/`` wraps the same experiment functions in
pytest-benchmark targets.
"""

from repro.bench.harness import ExperimentTable, Row, timed
from repro.bench.experiments import (
    ALL_EXPERIMENTS,
    build_database,
    build_engines,
    run_fig13_data_size,
    run_fig13b_module_comparison,
    run_fig14_module_cost,
    run_fig15_num_keywords,
    run_fig16_keyword_selectivity,
    run_fig17_num_joins,
    run_fig18_join_selectivity,
    run_fig19_nesting,
    run_fig20_topk,
    run_x1_element_size,
    run_x2_pdt_size,
)

__all__ = [
    "ExperimentTable",
    "Row",
    "timed",
    "ALL_EXPERIMENTS",
    "build_database",
    "build_engines",
    "run_fig13_data_size",
    "run_fig13b_module_comparison",
    "run_fig14_module_cost",
    "run_fig15_num_keywords",
    "run_fig16_keyword_selectivity",
    "run_fig17_num_joins",
    "run_fig18_join_selectivity",
    "run_fig19_nesting",
    "run_fig20_topk",
    "run_x1_element_size",
    "run_x2_pdt_size",
]
