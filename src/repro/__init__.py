"""repro: Efficient Keyword Search over Virtual XML Views (VLDB 2007).

A complete reproduction of Shao et al.'s system: QPT generation from
XQuery view definitions, index-only PDT generation, TF-IDF scoring with
deferred materialization, the three comparison baselines, workload
generators and the benchmark harness.

Quickstart::

    from repro import XMLDatabase, KeywordSearchEngine

    db = XMLDatabase()
    db.load_document("books.xml", books_xml_text)
    db.load_document("reviews.xml", reviews_xml_text)

    engine = KeywordSearchEngine(db)
    view = engine.define_view("bookrevs", VIEW_XQUERY)
    for hit in engine.search(view, ["xml", "search"], top_k=10):
        print(hit.rank, hit.score, hit.to_xml())
"""

from repro.core.engine import (
    KeywordSearchEngine,
    PhaseTimings,
    SearchOutcome,
    SearchResult,
    View,
)
from repro.core.cache import QueryCache
from repro.core.qpt import QPT, generate_qpts
from repro.core.pdt import (
    PDTResult,
    PDTSkeleton,
    annotate_skeleton,
    build_skeleton,
    generate_pdt,
)
from repro.core.topk import TopKSelector
from repro.dewey import DeweyID, pack, packed_child_bound, unpack
from repro.errors import (
    DocumentNotFoundError,
    ReproError,
    StaleViewError,
    StorageError,
    UnsupportedQueryError,
    ViewDefinitionError,
    XMLParseError,
    XQueryEvalError,
    XQuerySyntaxError,
)
from repro.storage.database import XMLDatabase
from repro.xmlmodel.node import Document, XMLNode
from repro.xmlmodel.parser import parse_document, parse_xml
from repro.xmlmodel.serializer import serialize

__version__ = "1.0.0"

__all__ = [
    "KeywordSearchEngine",
    "PhaseTimings",
    "SearchOutcome",
    "SearchResult",
    "View",
    "QPT",
    "generate_qpts",
    "PDTResult",
    "PDTSkeleton",
    "generate_pdt",
    "build_skeleton",
    "annotate_skeleton",
    "QueryCache",
    "TopKSelector",
    "DeweyID",
    "pack",
    "unpack",
    "packed_child_bound",
    "XMLDatabase",
    "Document",
    "XMLNode",
    "parse_document",
    "parse_xml",
    "serialize",
    "ReproError",
    "XMLParseError",
    "XQuerySyntaxError",
    "XQueryEvalError",
    "UnsupportedQueryError",
    "StorageError",
    "DocumentNotFoundError",
    "ViewDefinitionError",
    "StaleViewError",
    "__version__",
]
