"""``python -m repro.ingest`` — stand up a warm sharded corpus.

Thin CLI over :func:`repro.core.ingest.ingest_paths`: parse + index the
given documents in parallel, hash-partition them across shard executors
(colocating every multi-document view fragment), register the views,
pre-build skeletons/evaluated tiers, and print the ingest manifest as
JSON.

Example::

    python -m repro.ingest --shards 4 \\
        --view catalog=views/catalog.xq \\
        --snapshot-dir /var/cache/repro-skeletons \\
        --manifest manifest.json \\
        data/*.xml
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from repro.core.ingest import ingest_paths
from repro.errors import ReproError


def _parse_view(spec: str) -> tuple[str, str]:
    name, sep, path = spec.partition("=")
    if not sep or not name or not path:
        raise argparse.ArgumentTypeError(
            f"expected NAME=FILE.xq, got {spec!r}"
        )
    return name, path


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.ingest",
        description="Bulk-ingest XML documents into a sharded, warm corpus.",
    )
    parser.add_argument(
        "documents",
        nargs="+",
        metavar="DOC.xml",
        help="XML document files; the file stem becomes the document name",
    )
    parser.add_argument(
        "--view",
        action="append",
        default=[],
        type=_parse_view,
        metavar="NAME=FILE.xq",
        help="register a view from a definition file (repeatable)",
    )
    parser.add_argument(
        "--shards", type=int, default=4, help="shard count (default: 4)"
    )
    parser.add_argument(
        "--snapshot-dir",
        default=None,
        help="persist per-shard skeleton snapshots under this directory",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="parse/index worker threads (default: min(#docs, 8))",
    )
    parser.add_argument(
        "--serial",
        action="store_true",
        help="disable all parallelism (deterministic debugging runs)",
    )
    parser.add_argument(
        "--manifest",
        default=None,
        metavar="OUT.json",
        help="also write the manifest to this file",
    )
    args = parser.parse_args(argv)

    try:
        coordinator, report = ingest_paths(
            args.documents,
            dict(args.view),
            shard_count=args.shards,
            snapshot_dir=args.snapshot_dir,
            workers=args.workers,
            parallel=not args.serial,
        )
    except (ReproError, OSError) as exc:
        print(f"ingest failed: {exc}", file=sys.stderr)
        return 1
    coordinator.close()
    payload = json.dumps(report.as_dict(), indent=2, sort_keys=True)
    if args.manifest:
        with open(args.manifest, "w") as handle:
            handle.write(payload + "\n")
    print(payload)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
