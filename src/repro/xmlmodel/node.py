"""In-memory XML tree model.

The model follows the paper's conventions (Section 2.1):

* attributes are treated as though they were subelements — the parser turns
  ``<book isbn="x">`` into a ``book`` element with an ``isbn`` child whose
  value is ``x``;
* each element may carry *direct text* (the concatenation of its own text
  chunks) and any number of child elements;
* the *atomic value* of an element is its direct text, used by path-index
  rows and leaf-value predicates.

PDT nodes reuse the same class with an attached :class:`NodeAnnotations`
record carrying the selectively-materialized information (Dewey id, byte
length, per-keyword term frequencies) that the scoring and materialization
phases consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional

from repro.dewey import DeweyID


@dataclass(slots=True)
class NodeAnnotations:
    """Extra information attached to pruned (PDT) nodes.

    ``dewey`` identifies the base element this pruned node stands for;
    ``byte_length`` is the serialized length of the base element's subtree;
    ``term_frequencies`` maps query keyword -> tf aggregated over the base
    element's subtree.  ``pruned`` marks nodes whose content was *not*
    materialized ('c' nodes before top-k expansion).

    Nodes of a shared PDT skeleton tree carry a ``slot`` instead of
    ``term_frequencies``: the content node's index into the per-query tf
    arrays of :class:`repro.core.pdt.PDTResult`.  The tree itself is
    keyword-independent and reused across queries, so per-query data can
    never live on the node.
    """

    dewey: Optional[DeweyID] = None
    byte_length: int = 0
    term_frequencies: dict[str, int] = field(default_factory=dict)
    pruned: bool = False
    doc: Optional[str] = None
    slot: Optional[int] = None


class XMLNode:
    """A mutable XML element node.

    ``text`` is the element's direct text (``None`` when absent).  ``dewey``
    is assigned by :func:`assign_dewey_ids` / the database loader and is
    ``None`` for freshly constructed (query-output) nodes.
    """

    # ``__weakref__`` lets DAG-compressed skeletons memoize their lazily
    # materialized shared tree *weakly*: the tree stays alive exactly as
    # long as some cached PDT or evaluated result references it, and is
    # reclaimable the moment nothing does.
    __slots__ = ("tag", "text", "children", "parent", "dewey", "anno",
                 "__weakref__")

    def __init__(
        self,
        tag: str,
        text: Optional[str] = None,
        children: Optional[list["XMLNode"]] = None,
        dewey: Optional[DeweyID] = None,
    ):
        self.tag = tag
        self.text = text
        self.children: list[XMLNode] = []
        self.parent: Optional[XMLNode] = None
        self.dewey = dewey
        self.anno: Optional[NodeAnnotations] = None
        if children:
            for child in children:
                self.append(child)

    # -- construction ------------------------------------------------------

    def append(self, child: "XMLNode") -> "XMLNode":
        """Attach ``child`` as the last child and return it."""
        child.parent = self
        self.children.append(child)
        return child

    def make_child(self, tag: str, text: Optional[str] = None) -> "XMLNode":
        """Create, attach and return a new child element."""
        return self.append(XMLNode(tag, text))

    def detach_copy(self) -> "XMLNode":
        """Deep-copy this subtree (annotations shared, parents rebuilt)."""
        copy = XMLNode(self.tag, self.text, dewey=self.dewey)
        copy.anno = self.anno
        for child in self.children:
            copy.append(child.detach_copy())
        return copy

    # -- values ------------------------------------------------------------

    @property
    def value(self) -> Optional[str]:
        """The atomic value: stripped direct text, or ``None`` if empty."""
        if self.text is None:
            return None
        stripped = self.text.strip()
        return stripped if stripped else None

    def subtree_text(self) -> str:
        """Concatenated text of this element and all descendants."""
        parts: list[str] = []
        for node in self.iter():
            if node.text:
                parts.append(node.text)
        return " ".join(part.strip() for part in parts if part.strip())

    @property
    def is_leaf(self) -> bool:
        return not self.children

    # -- navigation --------------------------------------------------------

    def iter(self) -> Iterator["XMLNode"]:
        """Pre-order (document order) traversal of this subtree."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def descendants(self) -> Iterator["XMLNode"]:
        """Pre-order traversal excluding self."""
        iterator = self.iter()
        next(iterator)
        return iterator

    def children_by_tag(self, tag: str) -> list["XMLNode"]:
        return [child for child in self.children if child.tag == tag]

    def descendants_by_tag(self, tag: str) -> list["XMLNode"]:
        return [node for node in self.descendants() if node.tag == tag]

    def find(self, predicate: Callable[["XMLNode"], bool]) -> Optional["XMLNode"]:
        """First node in document order satisfying ``predicate``."""
        for node in self.iter():
            if predicate(node):
                return node
        return None

    def ancestors(self) -> Iterator["XMLNode"]:
        """Proper ancestors, nearest first."""
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    def path_from_root(self) -> list[str]:
        """Tag names from the root down to (and including) this node."""
        tags = [self.tag]
        tags.extend(a.tag for a in self.ancestors())
        tags.reverse()
        return tags

    # -- counting ----------------------------------------------------------

    def size(self) -> int:
        """Number of nodes in this subtree (including self)."""
        return sum(1 for _ in self.iter())

    def __repr__(self) -> str:
        ident = f" id={self.dewey}" if self.dewey is not None else ""
        value = f" value={self.value!r}" if self.value is not None else ""
        return f"<XMLNode {self.tag}{ident}{value} children={len(self.children)}>"


def assign_dewey_ids(root: XMLNode, root_id: Optional[DeweyID] = None) -> None:
    """Assign Dewey IDs to ``root`` and every descendant.

    ``root`` receives ``root_id`` (default ``1``); the i-th child of a node
    with id ``d`` receives ``d.i``.
    """
    root.dewey = root_id if root_id is not None else DeweyID.root()
    stack = [root]
    while stack:
        node = stack.pop()
        base = node.dewey
        assert base is not None
        for ordinal, child in enumerate(node.children, start=1):
            child.dewey = base.child(ordinal)
            stack.append(child)


class Document:
    """A named XML document with Dewey IDs assigned.

    This is the unit the database stores and the unit a QPT is generated
    against (each QPT is "associated with an XML document", Section 3.3).
    """

    def __init__(self, name: str, root: XMLNode, assign_ids: bool = True):
        self.name = name
        self.root = root
        if assign_ids:
            assign_dewey_ids(root)
        self._by_dewey: Optional[dict[DeweyID, XMLNode]] = None

    def node_by_dewey(self, dewey: DeweyID) -> Optional[XMLNode]:
        """Look up an element by its Dewey ID (lazy index, O(1) after build)."""
        if self._by_dewey is None:
            self._by_dewey = {
                node.dewey: node for node in self.root.iter() if node.dewey is not None
            }
        return self._by_dewey.get(dewey)

    def nodes_in_document_order(self) -> Iterator[XMLNode]:
        return self.root.iter()

    def size(self) -> int:
        return self.root.size()

    def __repr__(self) -> str:
        return f"<Document {self.name!r} nodes={self.size()}>"
