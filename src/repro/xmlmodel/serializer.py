"""Canonical XML serialization.

The serializer defines the byte lengths used for score normalization
(Theorem 4.1 requires ``PDTByteLength(e) == len(e')`` for materialized
elements, so a single canonical form is used everywhere: by the document
store at indexing time, by the Baseline when it materializes the view, and
by the materialization module when it expands top-k results).

Canonical form: ``<tag>text<child…/>…</tag>``; direct text precedes the
children; empty elements are written as ``<tag/>``; the five predefined
entities are escaped in text.
"""

from __future__ import annotations

from repro.xmlmodel.node import XMLNode

_ESCAPES = {"&": "&amp;", "<": "&lt;", ">": "&gt;"}


def escape_text(text: str) -> str:
    """Escape markup characters in character data."""
    if not any(ch in text for ch in _ESCAPES):
        return text
    for raw, escaped in _ESCAPES.items():
        text = text.replace(raw, escaped)
    return text


def serialize(node: XMLNode, indent: int | None = None) -> str:
    """Serialize ``node`` to canonical XML text.

    ``indent`` pretty-prints with the given indent width; the canonical
    (length-defining) form is ``indent=None``.
    """
    parts: list[str] = []
    if indent is None:
        _write_compact(node, parts)
    else:
        _write_pretty(node, parts, 0, indent)
    return "".join(parts)


def _write_compact(node: XMLNode, parts: list[str]) -> None:
    value = node.value
    if value is None and not node.children:
        parts.append(f"<{node.tag}/>")
        return
    parts.append(f"<{node.tag}>")
    if value is not None:
        parts.append(escape_text(value))
    for child in node.children:
        _write_compact(child, parts)
    parts.append(f"</{node.tag}>")


def _write_pretty(node: XMLNode, parts: list[str], level: int, width: int) -> None:
    pad = " " * (level * width)
    value = node.value
    if value is None and not node.children:
        parts.append(f"{pad}<{node.tag}/>\n")
        return
    if not node.children:
        parts.append(f"{pad}<{node.tag}>{escape_text(value or '')}</{node.tag}>\n")
        return
    parts.append(f"{pad}<{node.tag}>")
    if value is not None:
        parts.append(escape_text(value))
    parts.append("\n")
    for child in node.children:
        _write_pretty(child, parts, level + 1, width)
    parts.append(f"{pad}</{node.tag}>\n")


def serialized_length(node: XMLNode) -> int:
    """Length in characters of the canonical serialization of ``node``.

    Computed without building the full string (one pass, O(subtree)).
    """
    value = node.value
    total = 0
    if value is None and not node.children:
        return len(node.tag) + 3  # <tag/>
    total += 2 * len(node.tag) + 5  # <tag> + </tag>
    if value is not None:
        total += len(escape_text(value))
    for child in node.children:
        total += serialized_length(child)
    return total
