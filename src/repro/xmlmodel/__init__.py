"""XML substrate: tree model, from-scratch parser, serializer, tokenizer."""

from repro.xmlmodel.node import XMLNode, Document, NodeAnnotations
from repro.xmlmodel.parser import parse_xml, parse_document
from repro.xmlmodel.serializer import serialize, serialized_length
from repro.xmlmodel.tokenizer import tokenize, token_frequencies

__all__ = [
    "XMLNode",
    "Document",
    "NodeAnnotations",
    "parse_xml",
    "parse_document",
    "serialize",
    "serialized_length",
    "tokenize",
    "token_frequencies",
]
