"""A from-scratch XML parser for the subset the paper's data needs.

Supported: elements, attributes (converted to leading subelements, matching
the paper's "we treat attributes as though they are subelements"), character
data, CDATA sections, comments, processing instructions, an XML declaration,
and the five predefined entities plus numeric character references.

Not supported (and not needed for INEX-style data): DTD internal subsets
beyond being skipped, namespaces (colons are kept verbatim in names), and
exact mixed-content interleaving — an element's text chunks are concatenated
into its single ``text`` field, which is the granularity the search system
works at (direct text of an element).
"""

from __future__ import annotations

from repro.errors import XMLParseError
from repro.xmlmodel.node import Document, XMLNode

_PREDEFINED_ENTITIES = {
    "lt": "<",
    "gt": ">",
    "amp": "&",
    "apos": "'",
    "quot": '"',
}

_NAME_START = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_:")
_NAME_CHARS = _NAME_START | set("0123456789.-")


class _Cursor:
    """Tracks a position in the input text and reports line numbers."""

    __slots__ = ("text", "pos", "length")

    def __init__(self, text: str):
        self.text = text
        self.pos = 0
        self.length = len(text)

    def error(self, message: str) -> XMLParseError:
        line = self.text.count("\n", 0, self.pos) + 1
        return XMLParseError(message, position=self.pos, line=line)

    def at_end(self) -> bool:
        return self.pos >= self.length

    def peek(self) -> str:
        return self.text[self.pos] if self.pos < self.length else ""

    def startswith(self, literal: str) -> bool:
        return self.text.startswith(literal, self.pos)

    def expect(self, literal: str) -> None:
        if not self.startswith(literal):
            raise self.error(f"expected {literal!r}")
        self.pos += len(literal)

    def skip_whitespace(self) -> None:
        text, pos, length = self.text, self.pos, self.length
        while pos < length and text[pos] in " \t\r\n":
            pos += 1
        self.pos = pos

    def read_name(self) -> str:
        start = self.pos
        text, length = self.text, self.length
        if start >= length or text[start] not in _NAME_START:
            raise self.error("expected a name")
        pos = start + 1
        while pos < length and text[pos] in _NAME_CHARS:
            pos += 1
        self.pos = pos
        return text[start:pos]

    def read_until(self, literal: str, what: str) -> str:
        index = self.text.find(literal, self.pos)
        if index < 0:
            raise self.error(f"unterminated {what}: missing {literal!r}")
        chunk = self.text[self.pos : index]
        self.pos = index + len(literal)
        return chunk


def _decode_entities(raw: str, cursor: _Cursor) -> str:
    """Replace entity and character references in ``raw``."""
    if "&" not in raw:
        return raw
    parts: list[str] = []
    i = 0
    length = len(raw)
    while i < length:
        amp = raw.find("&", i)
        if amp < 0:
            parts.append(raw[i:])
            break
        parts.append(raw[i:amp])
        end = raw.find(";", amp + 1)
        if end < 0:
            raise cursor.error("unterminated entity reference")
        entity = raw[amp + 1 : end]
        if entity.startswith("#x") or entity.startswith("#X"):
            parts.append(chr(int(entity[2:], 16)))
        elif entity.startswith("#"):
            parts.append(chr(int(entity[1:])))
        elif entity in _PREDEFINED_ENTITIES:
            parts.append(_PREDEFINED_ENTITIES[entity])
        else:
            raise cursor.error(f"unknown entity: &{entity};")
        i = end + 1
    return "".join(parts)


def _skip_misc(cursor: _Cursor) -> None:
    """Skip whitespace, comments, PIs, XML declarations and DOCTYPE."""
    while True:
        cursor.skip_whitespace()
        if cursor.startswith("<!--"):
            cursor.pos += 4
            cursor.read_until("-->", "comment")
        elif cursor.startswith("<?"):
            cursor.pos += 2
            cursor.read_until("?>", "processing instruction")
        elif cursor.startswith("<!DOCTYPE"):
            # Skip to the matching '>' allowing a bracketed internal subset.
            cursor.pos += len("<!DOCTYPE")
            depth = 0
            while not cursor.at_end():
                ch = cursor.text[cursor.pos]
                cursor.pos += 1
                if ch == "[":
                    depth += 1
                elif ch == "]":
                    depth -= 1
                elif ch == ">" and depth <= 0:
                    break
            else:
                raise cursor.error("unterminated DOCTYPE")
        else:
            return


def _parse_attributes(cursor: _Cursor, element: XMLNode) -> None:
    """Parse attributes and attach them as leading subelements."""
    while True:
        cursor.skip_whitespace()
        ch = cursor.peek()
        if ch in (">", "/") or not ch:
            return
        name = cursor.read_name()
        cursor.skip_whitespace()
        cursor.expect("=")
        cursor.skip_whitespace()
        quote = cursor.peek()
        if quote not in ("'", '"'):
            raise cursor.error("attribute value must be quoted")
        cursor.pos += 1
        raw = cursor.read_until(quote, "attribute value")
        element.make_child(name, _decode_entities(raw, cursor))


def parse_xml(text: str) -> XMLNode:
    """Parse ``text`` and return the root element (no Dewey IDs assigned)."""
    cursor = _Cursor(text)
    _skip_misc(cursor)
    if cursor.peek() != "<":
        raise cursor.error("expected root element")
    root = _parse_element(cursor)
    _skip_misc(cursor)
    if not cursor.at_end():
        raise cursor.error("content after the root element")
    return root


def _parse_element(cursor: _Cursor) -> XMLNode:
    cursor.expect("<")
    tag = cursor.read_name()
    element = XMLNode(tag)
    _parse_attributes(cursor, element)
    if cursor.startswith("/>"):
        cursor.pos += 2
        return element
    cursor.expect(">")
    _parse_content(cursor, element)
    return element


def _parse_content(cursor: _Cursor, element: XMLNode) -> None:
    text_chunks: list[str] = []
    while True:
        if cursor.at_end():
            raise cursor.error(f"unexpected end of input inside <{element.tag}>")
        if cursor.startswith("</"):
            cursor.pos += 2
            closing = cursor.read_name()
            if closing != element.tag:
                raise cursor.error(
                    f"mismatched closing tag </{closing}> for <{element.tag}>"
                )
            cursor.skip_whitespace()
            cursor.expect(">")
            break
        if cursor.startswith("<!--"):
            cursor.pos += 4
            cursor.read_until("-->", "comment")
        elif cursor.startswith("<![CDATA["):
            cursor.pos += len("<![CDATA[")
            text_chunks.append(cursor.read_until("]]>", "CDATA section"))
        elif cursor.startswith("<?"):
            cursor.pos += 2
            cursor.read_until("?>", "processing instruction")
        elif cursor.peek() == "<":
            element.append(_parse_element(cursor))
        else:
            start = cursor.pos
            next_tag = cursor.text.find("<", start)
            if next_tag < 0:
                raise cursor.error(f"unexpected end of input inside <{element.tag}>")
            raw = cursor.text[start:next_tag]
            cursor.pos = next_tag
            decoded = _decode_entities(raw, cursor)
            if decoded.strip():
                text_chunks.append(decoded.strip())
    if text_chunks:
        element.text = " ".join(text_chunks)


def parse_document(name: str, text: str) -> Document:
    """Parse ``text`` into a :class:`Document` with Dewey IDs assigned."""
    return Document(name, parse_xml(text))
