"""Keyword tokenization.

One tokenizer is shared by every component that looks at text — the
inverted-index builder, the Baseline's materialized-view scorer, and the
conjunctive/disjunctive semantics checks — so that term frequencies computed
from indices are identical to term frequencies computed from materialized
text (a precondition of Theorem 4.1).

Tokens are maximal runs of alphanumeric characters, lower-cased.  Purely
numeric runs are kept (isbn fragments and years are realistic search keys).
"""

from __future__ import annotations

import re
from collections import Counter
from typing import Iterator

_TOKEN_RE = re.compile(r"[A-Za-z0-9]+")


def tokenize(text: str) -> Iterator[str]:
    """Yield lower-cased tokens of ``text`` in order (with duplicates)."""
    for match in _TOKEN_RE.finditer(text):
        yield match.group(0).lower()


def token_frequencies(text: str) -> Counter:
    """Token -> occurrence count for ``text``."""
    return Counter(tokenize(text))


def normalize_keyword(keyword: str) -> str:
    """Normalize a query keyword the same way indexed tokens are normalized.

    Multi-token keywords are rejected: the system's unit of matching is a
    single token (phrase queries are outside the paper's scope).
    """
    tokens = list(tokenize(keyword))
    if len(tokens) != 1:
        raise ValueError(
            f"keyword must normalize to exactly one token, got {keyword!r} -> {tokens}"
        )
    return tokens[0]
