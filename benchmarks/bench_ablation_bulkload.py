"""Ablation: bulk-loaded vs insert-loaded B+-tree construction.

The path index bulk-loads its B+-tree from sorted rows (DESIGN.md); this
benchmark quantifies the build-time difference against one-at-a-time
insertion, at index scale.
"""

from repro.storage.btree import BPlusTree

ITEMS = [((path, value), [((1, i), 10)]) for path in range(40)
         for i, value in enumerate(range(200))]
SORTED_ITEMS = sorted(ITEMS)


def test_bulk_load(benchmark):
    tree = benchmark(lambda: BPlusTree.from_sorted_items(SORTED_ITEMS))
    assert len(tree) == len(SORTED_ITEMS)


def test_insert_load(benchmark):
    def build():
        tree = BPlusTree()
        for key, value in SORTED_ITEMS:
            tree.insert(key, value)
        return tree

    tree = benchmark(build)
    assert len(tree) == len(SORTED_ITEMS)
