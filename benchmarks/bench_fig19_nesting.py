"""F19 (Figure 19): varying the level of FLWOR nestings (1-4)."""

import pytest

from conftest import make_engine_and_view
from repro.workloads.params import ExperimentParams


@pytest.mark.parametrize("nesting_level", [1, 2, 3, 4])
def test_nesting_level(benchmark, nesting_level):
    params = ExperimentParams(data_scale=1, nesting_level=nesting_level)
    engine, view = make_engine_and_view(params)
    keywords = params.keywords()
    benchmark(lambda: engine.search(view, keywords, top_k=params.top_k))
