"""X8 (extension): corpus sharding — per-shard executors, streaming merge.

Not a paper figure — this locks down the scatter-gather layer the way
bench_x7 locks down the cold path.  Two deployments over the identical
96-document corpus (see ``repro.bench.experiments._sharding_corpus``):

* **single executor** — one :class:`KeywordSearchEngine`, one cache
  budget.  The corpus's ``(view, doc)`` working set is sized to sweep
  its skeleton and PDT tiers cyclically — the LRU worst case — so every
  steady-state query pays cold structural work for most documents;
* **4 shard executors** — the same corpus hash-partitioned by the
  shared :class:`~repro.core.routing.ShardRouter`, each executor's
  slice fitting its own cache tiers, queries scattered by the
  :class:`~repro.core.sharding.CorpusCoordinator` and re-unified by the
  streaming top-k merge.

``test_sharded_2x_faster_than_single_executor`` is the self-enforcing
acceptance criterion of the sharding PR:

* a keyword-cycle sweep through 4 shard executors must be **≥ 2x**
  faster than the single executor (interleaved minimums via the shared
  ``repro.bench.experiments.measure_sharding`` protocol, so
  CPU-frequency drift cancels out);
* the streaming merge's early termination must have *done* something:
  the coordinator consumed strictly fewer per-shard results than the
  shards offered, and at least one stream was pruned against the
  running k-th-score bound (a speedup with ``consumed == candidates``
  would mean the merge degenerated to drain-everything).

Ranking equivalence is not re-proven here — that is the difftest
``sharded`` configuration's job (bit-for-bit against the single engine
and the naive baseline); this file owns the performance claim.
"""

from __future__ import annotations

from repro.bench.experiments import measure_sharding

SPEEDUP_FLOOR = 2.0
SHARD_COUNT = 4


# -- pytest-benchmark variants (the usual statistics tables) ------------------


def test_sweep_single_executor(benchmark):
    from repro.bench.experiments import _sharding_corpus
    from repro.core.engine import KeywordSearchEngine
    from repro.storage.database import XMLDatabase

    documents, view_text, keyword_sets = _sharding_corpus()
    database = XMLDatabase()
    for name in sorted(documents):
        database.load_document(name, documents[name])
    engine = KeywordSearchEngine(database)
    view = engine.define_view("v", view_text)
    engine.warm_view(view)

    def sweep():
        for keywords in keyword_sets:
            engine.search(view, keywords, top_k=5)

    sweep()  # steady state: every keyword set seen once
    benchmark(sweep)


def test_sweep_sharded(benchmark):
    from repro.bench.experiments import _sharding_corpus
    from repro.core.ingest import ingest_corpus

    documents, view_text, keyword_sets = _sharding_corpus()
    coordinator, _ = ingest_corpus(
        documents, {"v": view_text}, shard_count=SHARD_COUNT
    )

    def sweep():
        for keywords in keyword_sets:
            coordinator.search("v", keywords, top_k=5)

    with coordinator:
        sweep()
        benchmark(sweep)


# -- self-enforcing acceptance criteria ---------------------------------------


def test_sharded_2x_faster_than_single_executor():
    """Acceptance: 4 shard executors ≥ 2x one executor, with the
    streaming merge's early termination observably at work.

    Up to three measurement attempts: scheduler noise can only *lower*
    a measured ratio (it inflates whichever side the interruption lands
    on more), so the criterion passes if any attempt clears the floor
    and the failure report carries every attempt.  The merge counters
    are deterministic — they are asserted on every attempt.
    """
    attempts = []
    for _ in range(3):
        numbers = measure_sharding(shard_count=SHARD_COUNT)
        # Early termination must cut the per-shard results consumed —
        # deterministic, so it holds on every attempt or the merge is
        # broken, not noisy.
        assert numbers["merge_consumed"] < numbers["merge_candidates"], (
            "streaming merge consumed every per-shard result: "
            f"{numbers['merge_consumed']:.0f} of "
            f"{numbers['merge_candidates']:.0f} (no early termination)"
        )
        assert numbers["merge_pruned"] >= 1, (
            "no shard stream was ever pruned against the k-th-score bound"
        )
        attempts.append(numbers)
        if numbers["speedup"] >= SPEEDUP_FLOOR:
            return
    summary = ", ".join(
        f"{n['speedup']:.2f}x (single {n['single_ms']:.1f} ms / "
        f"sharded {n['sharded_ms']:.1f} ms)"
        for n in attempts
    )
    raise AssertionError(
        f"sharded sweep speedup below the {SPEEDUP_FLOOR}x floor in "
        f"every attempt: {summary}"
    )
