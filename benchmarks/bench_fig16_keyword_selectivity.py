"""F16 (Figure 16): varying keyword selectivity (low/medium/high).

'Low' selectivity means frequent terms and long inverted lists — the paper
observes slightly higher cost there.
"""

import pytest

from conftest import make_engine_and_view
from repro.workloads.params import ExperimentParams


@pytest.mark.parametrize("selectivity", ["low", "medium", "high"])
def test_keyword_selectivity(benchmark, selectivity):
    params = ExperimentParams(data_scale=1, keyword_selectivity=selectivity)
    engine, view = make_engine_and_view(params)
    keywords = params.keywords()
    benchmark(lambda: engine.search(view, keywords, top_k=params.top_k))
