"""F17 (Figure 17): varying the number of value joins (0-4).

The paper's biggest step is 0 -> 1: a second PDT plus a value join replace
a single-document selection.
"""

import pytest

from conftest import make_engine_and_view
from repro.workloads.params import ExperimentParams


@pytest.mark.parametrize("num_joins", [0, 1, 2, 3, 4])
def test_num_joins(benchmark, num_joins):
    params = ExperimentParams(data_scale=1, num_joins=num_joins)
    engine, view = make_engine_and_view(params)
    keywords = params.keywords()
    benchmark(lambda: engine.search(view, keywords, top_k=params.top_k))
