"""X12 (extension): failure domains — degraded serving under an outage.

Not a paper figure — this locks down the failure-domain PR the way
bench_x8 locks down the scatter-gather speedup.  One of four shard
executors is hard-failed through the seeded fault injector
(``shard0.collect`` errors on every call) against a coordinator running
``partial_results=True`` with a quarantining
:class:`~repro.core.health.FleetHealth` (see
``repro.bench.experiments.measure_chaos`` for the protocol).

``test_chaos_floors_hold`` is the self-enforcing acceptance criterion
of the failure-domain PR:

* **availability 1.0** during the outage — every query returns a
  degraded-flagged outcome missing exactly the failed shard, with zero
  untyped errors and zero unflagged responses (a degraded fleet must
  never serve silently wrong data);
* **degraded p50 <= 1.5x healthy p50** — losing a shard must not cost
  more than the fraction of work it owned, and once quarantine stops
  the coordinator from even calling the dead shard it should cost
  *less* than healthy (the table usually shows a ratio below 1);
* **bit-identical recovery** — after the faults clear and the
  quarantine cooldown elapses, every outcome exactly equals a pristine
  coordinator that never saw a fault (idf floats, scores, indexes and
  serialized XML compared with ``==``).

The per-response degraded/subset/typed-error trichotomy across the
seed matrix is the chaos difftest's job
(``tests/difftest/test_differential_chaos.py``); this file owns the
availability and latency claims.
"""

from __future__ import annotations

from repro.bench.experiments import measure_chaos

DEGRADED_P50_CEILING = 1.5


# -- pytest-benchmark variants (the usual statistics tables) ------------------


def _chaos_fixture():
    from repro.bench.experiments import _sharding_corpus
    from repro.core.faults import FAULT_ERROR, FaultInjector, FaultPlan
    from repro.core.health import FleetHealth
    from repro.core.sharding import (
        CorpusCoordinator,
        ShardExecutor,
        ShardPlan,
    )

    documents, view_text, keyword_sets = _sharding_corpus(48)
    names = sorted(documents)
    shard_count = 4
    plan = ShardPlan.from_assignments(
        {name: i % shard_count for i, name in enumerate(names)}, shard_count
    )
    injector = FaultInjector(
        FaultPlan.single(7, "shard0.collect", FAULT_ERROR)
    )
    injector.disable()
    executors = [
        ShardExecutor(i, fault_injector=injector) for i in range(shard_count)
    ]
    for name in names:
        executors[plan.shard_of(name)].load_document(name, documents[name])
    coordinator = CorpusCoordinator(
        executors,
        plan,
        partial_results=True,
        health=FleetHealth(shard_count, failure_threshold=2),
    )
    coordinator.define_view("v", view_text)
    return coordinator, injector, keyword_sets


def test_healthy_sweep(benchmark):
    coordinator, _, keyword_sets = _chaos_fixture()
    try:

        def sweep():
            for keywords in keyword_sets:
                coordinator.search("v", keywords, top_k=5)

        sweep()
        benchmark(sweep)
    finally:
        coordinator.close()


def test_degraded_sweep(benchmark):
    """The same sweep with shard 0 hard-failed and quarantined."""
    coordinator, injector, keyword_sets = _chaos_fixture()
    try:
        for keywords in keyword_sets:  # warm while healthy
            coordinator.search("v", keywords, top_k=5)
        injector.enable()

        def sweep():
            for keywords in keyword_sets:
                outcome = coordinator.search_detailed("v", keywords, top_k=5)
                assert outcome.degraded and outcome.missing_shards == (0,)

        sweep()
        benchmark(sweep)
    finally:
        coordinator.close()


# -- self-enforcing acceptance criteria ---------------------------------------


def test_chaos_floors_hold():
    """Acceptance: 100% degraded-flagged availability with zero untyped
    errors, degraded p50 within 1.5x of healthy, and bit-identical
    post-recovery outcomes.

    Up to three measurement attempts: scheduler noise can only *hurt*
    the latency ratio, so the timing ceiling passes if any attempt
    clears it.  The availability, quarantine and recovery evidence is
    deterministic — it holds on every attempt, or the failure-domain
    machinery is broken, not noisy.
    """
    attempts = []
    for _ in range(3):
        numbers = measure_chaos()
        assert numbers["availability"] == 1.0, (
            "an outage query did not come back as a degraded-flagged "
            f"outcome: {numbers}"
        )
        assert numbers["untyped_errors"] == 0.0, (
            f"the outage surfaced untyped exceptions: {numbers}"
        )
        assert numbers["unflagged_responses"] == 0.0, (
            "a response under outage was not flagged degraded — that is "
            f"silently wrong data: {numbers}"
        )
        assert numbers["quarantine_engaged"] == 1.0, (
            f"the failing shard was never quarantined: {numbers}"
        )
        assert numbers["quarantine_healed"] == 1.0, (
            f"the quarantine did not heal after the cooldown: {numbers}"
        )
        assert numbers["recovered_identical"] == 1.0, (
            "post-recovery outcomes differ from a never-failed "
            f"coordinator: {numbers}"
        )
        assert numbers["injected_faults"] > 0, (
            f"the fault injector never fired — nothing was tested: {numbers}"
        )
        attempts.append(numbers)
        if numbers["degraded_over_healthy"] <= DEGRADED_P50_CEILING:
            return
    summary = ", ".join(
        f"{n['degraded_over_healthy']:.2f}x (healthy "
        f"{n['healthy_p50_ms']:.2f}ms / degraded {n['degraded_p50_ms']:.2f}ms)"
        for n in attempts
    )
    raise AssertionError(
        f"degraded p50 ceiling ({DEGRADED_P50_CEILING}x healthy) missed in "
        f"every attempt: {summary}"
    )
