"""X2 (Sec. 5.2.3): PDT generation and the pruning ratio.

Benchmarks PDT generation alone and asserts the paper's pruning claim
(the PDT is a small fraction of the base data).
"""

from repro.core.pdt import generate_pdt

KEYWORDS = ("thomas", "control")


def test_pdt_generation_and_ratio(benchmark, efficient):
    view = efficient.get_view("bench")

    def build():
        return {
            doc_name: generate_pdt(
                qpt,
                efficient.database.get(doc_name).path_index,
                efficient.database.get(doc_name).inverted_index,
                KEYWORDS,
            )
            for doc_name, qpt in view.qpts.items()
        }

    pdts = benchmark(build)
    data_elements = sum(
        len(efficient.database.get(doc).store) for doc in view.qpts
    )
    pdt_elements = sum(p.node_count for p in pdts.values())
    assert pdt_elements < 0.25 * data_elements
