"""X6 (extension): serving throughput/latency under concurrent mixed traffic.

Not a paper figure — this measures the asyncio serving layer
(:mod:`repro.serving`) in the regime it exists for: many clients, one
engine, admission control and shard-affine lanes in between.  Three
measurements at scale 1:

* **solo engine**       — direct ``search_detailed`` calls on the warm
  skeleton path (bench_x4's regime), for context;
* **solo served**       — one client through the full server stack
  (queue, lanes, thread pool): the single-caller skeleton-warm median
  the acceptance criterion compares against;
* **8-client mixed**    — eight concurrent clients, 70% against the
  pre-warmed hot view / 30% against a second view, open-loop pacing
  (a few ms of think time per client, as real traffic has): the
  pre-warmed hot view's p50 end-to-end latency must stay within
  **2x** the solo served median.

The hot engine runs with the PDT and prepared tiers disabled (exactly
bench_x4's skeleton-warm configuration), so *every* hot query exercises
the per-keyword posting sweep + scoring + top-k — no iteration degrades
into an exact-repeat PDT hit and the comparison measures serving
overhead, not cache luck.  A closed-loop (no think time) section
reports saturation throughput for the record, without a latency
assertion: eight CPU-bound clients on one GIL are *expected* to queue.

Run directly (``python benchmarks/bench_x6_serving.py``) for a JSON
report, or through pytest for the self-enforcing acceptance check.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import random
import statistics
import time

from repro.bench.experiments import build_database
from repro.core.cache import QueryCache
from repro.core.engine import KeywordSearchEngine
from repro.serving import LatencyRecorder, Overloaded, SearchServer, ServerConfig
from repro.workloads.params import ExperimentParams
from repro.workloads.views import view_for_params

PARAMS = ExperimentParams(data_scale=1)

# Cycled by every traffic generator; with the PDT/prepared tiers off,
# repeats still run the full skeleton-annotation path.
KEYWORD_SETS = [
    ("thomas",),
    ("control",),
    ("search",),
    ("thomas", "control"),
    ("analysis",),
    ("control", "search"),
]

CLIENTS = 8
REQUESTS_PER_CLIENT = 50
# Per-request client think time in the open-loop phase.  Engine work is
# pure Python, so all executor threads share one GIL — one effective
# processor.  At ~0.26 ms service time, 6 ms of think time keeps the
# offered load near rho ~= 0.35, the regime the latency acceptance
# criterion describes; the closed-loop phase below reports what
# saturation (rho -> 1) does instead.
THINK_TIME = 0.006
LATENCY_BUDGET = 2.0  # hot-view p50 may be at most this x the solo median


def make_engine():
    """The bench_x4 skeleton-warm configuration: hot + side views."""
    database = build_database(PARAMS)
    engine = KeywordSearchEngine(
        database, cache=QueryCache(pdt_capacity=0, prepared_capacity=0)
    )
    engine.define_view("hot", view_for_params(PARAMS))
    engine.define_view("side", view_for_params(PARAMS))
    return engine


def solo_engine_median(engine, iterations: int = 100) -> float:
    """Direct warm-path engine latency, no serving stack (context)."""
    cycle = itertools.cycle(KEYWORD_SETS)
    engine.warm_view("hot")
    samples = []
    for _ in range(iterations):
        keywords = next(cycle)
        start = time.perf_counter()
        outcome = engine.search_detailed("hot", keywords, top_k=PARAMS.top_k)
        samples.append(time.perf_counter() - start)
        assert set(outcome.cache_hits.values()) == {"skeleton"}
    return statistics.median(samples)


async def run_traffic(
    server,
    clients: int,
    requests_per_client: int,
    think_time: float,
    hot_fraction: float = 0.7,
) -> dict[str, list[float]]:
    """Drive mixed traffic; returns per-view end-to-end latency samples."""
    latencies: dict[str, list[float]] = {"hot": [], "side": []}

    async def client(client_id: int) -> None:
        cycle = itertools.cycle(
            KEYWORD_SETS[client_id % len(KEYWORD_SETS):]
            + KEYWORD_SETS[: client_id % len(KEYWORD_SETS)]
        )
        rng = random.Random(client_id)
        if think_time:
            # Stagger starts and jitter think times: synchronized
            # clients would re-convoy every cycle and measure the
            # resulting self-inflicted queueing, not the server.
            await asyncio.sleep(rng.uniform(0.0, think_time * clients / 2))
        for index in range(requests_per_client):
            view = (
                "hot"
                if (client_id + index) % 10 < hot_fraction * 10
                else "side"
            )
            response = await server.search(view, next(cycle), top_k=PARAMS.top_k)
            assert not isinstance(response, Overloaded), response.describe()
            latencies[view].append(response.latency)
            if think_time:
                await asyncio.sleep(rng.uniform(0.5, 1.5) * think_time)

    await asyncio.gather(*[client(c) for c in range(clients)])
    return latencies


def percentile(samples: list[float], fraction: float) -> float:
    """The serving layer's own quantile definition, so the numbers the
    bench asserts on cross-check against ``server.snapshot()``."""
    recorder = LatencyRecorder(window=max(1, len(samples)))
    for sample in samples:
        recorder.record(sample)
    return recorder.percentile(fraction)


async def serve_benchmark() -> dict:
    engine = make_engine()
    report: dict = {"scale": PARAMS.data_scale, "clients": CLIENTS}
    report["solo_engine_median"] = solo_engine_median(engine)

    config = ServerConfig(
        max_queue_depth=256,
        max_inflight_per_view=256,
        workers=CLIENTS,
        shard_lane_width=2,
        warm_views=("hot", "side"),
    )
    async with SearchServer(engine, config) as server:
        assert server.startup_warmup is not None
        # Single caller through the full stack, paced like the mixed
        # phase (an un-paced tight loop keeps the executor threads and
        # event loop artificially hot and under-counts the per-request
        # wakeup cost both regimes actually pay): the acceptance
        # baseline.
        solo = await run_traffic(
            server, clients=1, requests_per_client=60,
            think_time=THINK_TIME, hot_fraction=1.0,
        )
        report["solo_served_median"] = statistics.median(solo["hot"])

        # Open-loop mixed traffic: the acceptance measurement.
        start = time.perf_counter()
        mixed = await run_traffic(
            server, CLIENTS, REQUESTS_PER_CLIENT, THINK_TIME
        )
        elapsed = time.perf_counter() - start
        served = len(mixed["hot"]) + len(mixed["side"])
        report["mixed_open_loop"] = {
            "served": served,
            "throughput_qps": served / elapsed,
            "hot_p50": percentile(mixed["hot"], 0.50),
            "hot_p95": percentile(mixed["hot"], 0.95),
            "side_p50": percentile(mixed["side"], 0.50),
        }

        # Closed-loop saturation throughput (reported, not asserted).
        start = time.perf_counter()
        saturated = await run_traffic(
            server, CLIENTS, REQUESTS_PER_CLIENT, think_time=0.0
        )
        elapsed = time.perf_counter() - start
        served = len(saturated["hot"]) + len(saturated["side"])
        report["mixed_closed_loop"] = {
            "served": served,
            "throughput_qps": served / elapsed,
            "hot_p50": percentile(saturated["hot"], 0.50),
            "hot_p95": percentile(saturated["hot"], 0.95),
        }
        snapshot = server.snapshot()
    report["requests"] = {
        key: snapshot["requests"][key]
        for key in ("submitted", "completed", "failed", "rejected_total")
    }
    return report


def test_hot_view_p50_within_budget_under_mixed_traffic():
    """The acceptance criterion: with 8 concurrent clients at scale 1,
    the pre-warmed hot view's p50 latency stays within 2x the
    single-caller skeleton-warm median, and nothing is dropped or
    errored at these limits."""
    report = asyncio.run(asyncio.wait_for(serve_benchmark(), 300))
    solo = report["solo_served_median"]
    hot_p50 = report["mixed_open_loop"]["hot_p50"]
    assert report["requests"]["failed"] == 0
    assert report["requests"]["rejected_total"] == 0
    assert report["requests"]["completed"] == report["requests"]["submitted"]
    assert hot_p50 <= LATENCY_BUDGET * solo, (
        f"hot-view p50 {hot_p50 * 1e3:.3f} ms exceeds "
        f"{LATENCY_BUDGET}x solo served median {solo * 1e3:.3f} ms\n"
        f"{json.dumps(report, indent=2)}"
    )
    print(json.dumps(report, indent=2))


if __name__ == "__main__":
    print(json.dumps(asyncio.run(serve_benchmark()), indent=2))
