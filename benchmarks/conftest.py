"""Shared benchmark fixtures: databases, engines and views per scale.

Databases are session-scoped and cached by configuration so the
pytest-benchmark run measures query work, not data generation.  Scales stay
small (1-2 units) to keep ``pytest benchmarks/ --benchmark-only`` quick;
the full paper-style sweeps live in ``python -m repro.bench``.
"""

from __future__ import annotations

import pytest

from repro.baselines.gtp import GTPEngine
from repro.baselines.naive import BaselineEngine
from repro.bench.experiments import build_database
from repro.core.engine import KeywordSearchEngine
from repro.workloads.params import ExperimentParams
from repro.workloads.views import view_for_params

BENCH_SCALE = 2  # data scale used by single-point benchmarks


@pytest.fixture(scope="session")
def default_params() -> ExperimentParams:
    return ExperimentParams(data_scale=BENCH_SCALE)


@pytest.fixture(scope="session")
def database(default_params):
    return build_database(default_params)


@pytest.fixture(scope="session")
def efficient(database, default_params):
    # Query cache off: the paper-figure benchmarks measure the per-query
    # pipeline cost, not warm-cache serving (that's bench_x3_query_cache).
    engine = KeywordSearchEngine(database, enable_cache=False)
    engine.define_view("bench", view_for_params(default_params))
    return engine


@pytest.fixture(scope="session")
def baseline(database, default_params):
    engine = BaselineEngine(database)
    engine._bench_view = engine.define_view(
        "bench", view_for_params(default_params)
    )
    return engine


@pytest.fixture(scope="session")
def gtp(database, default_params):
    engine = GTPEngine(database)
    engine._bench_view = engine.define_view(
        "bench", view_for_params(default_params)
    )
    return engine


def make_engine_and_view(params: ExperimentParams, enable_cache: bool = False):
    """Build an Efficient engine + view for a parameter point (cached db).

    The query cache defaults to *off* so repeated benchmark iterations
    keep measuring the full pipeline; pass ``enable_cache=True`` to
    benchmark warm-cache serving instead.
    """
    database = build_database(params)
    engine = KeywordSearchEngine(database, enable_cache=enable_cache)
    view = engine.define_view("bench", view_for_params(params))
    return engine, view
