"""X3 (extension): the query cache's exact-repeat tiers under repeated queries.

Not a paper figure — this measures the serving-layer extension: once a
query has warmed the cache, an identical query is answered without a
single path-index or inverted-index probe (the PDT tier serves the pruned
trees directly), and without touching document storage until a winner is
materialized.  ``test_cold_pipeline`` is the uncached contrast point.
"""

from conftest import make_engine_and_view
from repro.workloads.params import ExperimentParams

PARAMS = ExperimentParams(data_scale=1)


def assert_zero_index_probes(engine, view):
    for name in view.document_names:
        indexed = engine.database.get(name)
        assert indexed.path_index.probe_count == 0
        assert indexed.inverted_index.probe_count == 0


def test_warm_repeat_query(benchmark):
    engine, view = make_engine_and_view(PARAMS, enable_cache=True)
    keywords = PARAMS.keywords()
    first = engine.search_detailed(view, keywords, top_k=PARAMS.top_k)
    assert set(first.cache_hits.values()) == {"miss"}

    engine.database.reset_access_counters()
    outcome = benchmark(
        lambda: engine.search_detailed(view, keywords, top_k=PARAMS.top_k)
    )
    # Every repetition was served from the PDT tier: zero probes, zero
    # store accesses, across however many iterations the harness ran.
    assert set(outcome.cache_hits.values()) == {"pdt"}
    assert_zero_index_probes(engine, view)
    for name in view.document_names:
        assert engine.database.get(name).store.access_count == 0
    assert engine.cache.stats()["pdt"]["hits"] > 0


def test_prepared_tier_repeat_query(benchmark):
    from repro.core.cache import QueryCache
    from repro.core.engine import KeywordSearchEngine
    from repro.bench.experiments import build_database
    from repro.workloads.views import view_for_params

    database = build_database(PARAMS)
    # Skeleton tier off too: this point isolates the prepared-lists tier
    # (bench_x4_skeleton_reuse covers the skeleton regimes).
    engine = KeywordSearchEngine(
        database, cache=QueryCache(pdt_capacity=0, skeleton_capacity=0)
    )
    view = engine.define_view("bench", view_for_params(PARAMS))
    keywords = PARAMS.keywords()
    engine.search(view, keywords, top_k=PARAMS.top_k)

    engine.database.reset_access_counters()
    outcome = benchmark(
        lambda: engine.search_detailed(view, keywords, top_k=PARAMS.top_k)
    )
    # PDT tier disabled: PDTs regenerate each time, but the prepared
    # lists carry every probe result, so the indices still see nothing.
    assert set(outcome.cache_hits.values()) == {"prepared"}
    assert_zero_index_probes(engine, view)


def test_cold_pipeline(benchmark):
    engine, view = make_engine_and_view(PARAMS, enable_cache=False)
    keywords = PARAMS.keywords()
    engine.database.reset_access_counters()
    benchmark(lambda: engine.search(view, keywords, top_k=PARAMS.top_k))
    probes = sum(
        engine.database.get(name).path_index.probe_count
        + engine.database.get(name).inverted_index.probe_count
        for name in view.document_names
    )
    assert probes > 0
