"""F13 (Figure 13): all four strategies on the default view.

One benchmark per (strategy, scale) point; the paper's claim is the gap
between the Efficient series and the three alternatives.
"""

import pytest

from repro.baselines.gtp import GTPEngine
from repro.baselines.naive import BaselineEngine
from repro.baselines.projection import project_serialized
from repro.bench.experiments import build_database
from repro.core.engine import KeywordSearchEngine
from repro.workloads.params import ExperimentParams
from repro.workloads.views import view_for_params

SCALES = [1, 2]
KEYWORDS = ("thomas", "control")


def _setup(scale, engine_cls):
    params = ExperimentParams(data_scale=scale)
    database = build_database(params)
    engine = engine_cls(database)
    view = engine.define_view("bench", view_for_params(params))
    return engine, view, params


@pytest.mark.parametrize("scale", SCALES)
def test_efficient(benchmark, scale):
    engine, view, params = _setup(scale, KeywordSearchEngine)
    benchmark(lambda: engine.search(view, KEYWORDS, top_k=params.top_k))


@pytest.mark.parametrize("scale", SCALES)
def test_baseline(benchmark, scale):
    engine, view, params = _setup(scale, BaselineEngine)
    benchmark(lambda: engine.search(view, KEYWORDS, top_k=params.top_k))


@pytest.mark.parametrize("scale", SCALES)
def test_gtp(benchmark, scale):
    engine, view, params = _setup(scale, GTPEngine)
    benchmark(lambda: engine.search(view, KEYWORDS, top_k=params.top_k))


@pytest.mark.parametrize("scale", SCALES)
def test_proj(benchmark, scale):
    engine, view, params = _setup(scale, KeywordSearchEngine)
    database = engine.database
    serialized = {doc: database.get(doc).serialized for doc in view.qpts}
    benchmark(
        lambda: [
            project_serialized(qpt, serialized[doc])
            for doc, qpt in view.qpts.items()
        ]
    )
