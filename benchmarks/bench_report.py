"""Machine-readable perf-trajectory report (``BENCH_pr3.json``).

Times the three serving regimes of ``bench_x4_skeleton_reuse`` — cold /
skeleton-warm / fully-warm — plus the annotation microbench pair of
``bench_x5_annotation``, at one or more data scales, and writes the
median latencies as JSON.  This is the artifact the CI perf-smoke job
uploads per commit, so the ROADMAP's "fast as the hardware allows" goal
has a recorded trajectory instead of docstring folklore.

Run it directly (no pytest-benchmark needed)::

    PYTHONPATH=src python benchmarks/bench_report.py \
        --scales 0 1 --out BENCH_pr3.json

Scale 0 is a degenerate near-empty database — it keeps the smoke run
fast and exercises the empty-document and zero-result edge paths.
"""

from __future__ import annotations

import argparse
import itertools
import json
import platform
import time
from pathlib import Path

from repro.bench.experiments import build_database
from repro.core.cache import QueryCache
from repro.core.engine import KeywordSearchEngine
from repro.workloads.params import ExperimentParams
from repro.workloads.views import view_for_params

# Disjoint keyword sets cycled by the skeleton-warm regime so the PDT
# tier (disabled anyway) could never serve an iteration.
KEYWORD_SETS = [
    ("thomas",),
    ("control",),
    ("search",),
    ("thomas", "control"),
    ("analysis",),
    ("control", "search"),
]


def _median_ms(fn, rounds: int, warmup: int = 3) -> float:
    for _ in range(warmup):
        fn()
    samples = []
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    samples.sort()
    return samples[len(samples) // 2] * 1000.0


def _cold_ms(params: ExperimentParams, rounds: int) -> float:
    database = build_database(params)
    engine = KeywordSearchEngine(database, enable_cache=False)
    view = engine.define_view("bench", view_for_params(params))
    keywords = params.keywords()
    return _median_ms(
        lambda: engine.search(view, keywords, top_k=params.top_k), rounds
    )


def _skeleton_warm_ms(params: ExperimentParams, rounds: int) -> float:
    database = build_database(params)
    engine = KeywordSearchEngine(
        database, cache=QueryCache(pdt_capacity=0, prepared_capacity=0)
    )
    view = engine.define_view("bench", view_for_params(params))
    engine.search(view, params.keywords(), top_k=params.top_k)  # prime
    cycle = itertools.cycle(KEYWORD_SETS)
    return _median_ms(
        lambda: engine.search(view, next(cycle), top_k=params.top_k), rounds
    )


def _fully_warm_ms(params: ExperimentParams, rounds: int) -> float:
    database = build_database(params)
    engine = KeywordSearchEngine(database)
    view = engine.define_view("bench", view_for_params(params))
    keywords = params.keywords()
    engine.search(view, keywords, top_k=params.top_k)  # prime
    return _median_ms(
        lambda: engine.search(view, keywords, top_k=params.top_k), rounds
    )


def _annotation_us(rounds: int) -> dict[str, float]:
    """Median microseconds for the two annotation inner loops.

    Always measured at bench_x5's own configuration (scale 1, its
    keyword set) so the numbers are comparable across reports — the
    ``scale`` field in the output records this.
    """
    import sys

    sys.path.insert(0, str(Path(__file__).resolve().parent))
    from bench_x5_annotation import (
        PARAMS as X5_PARAMS,
        _merge_join,
        _per_node_bisect,
        _skeletons_and_lists,
    )

    skeletons, inv_lists = _skeletons_and_lists()

    def sweep():
        for doc, skeleton in skeletons.items():
            _merge_join(skeleton, inv_lists[doc])

    def bisect():
        for doc, skeleton in skeletons.items():
            _per_node_bisect(skeleton, inv_lists[doc])

    return {
        "scale": X5_PARAMS.data_scale,
        "merge_join_us": round(_median_ms(sweep, rounds) * 1000.0, 2),
        "per_node_bisect_us": round(_median_ms(bisect, rounds) * 1000.0, 2),
    }


def build_report(scales: list[int], rounds: int) -> dict:
    report: dict = {
        "pr": 3,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "rounds": rounds,
        "benchmarks": {},
    }
    for scale in scales:
        params = ExperimentParams(data_scale=scale)
        report["benchmarks"][f"scale_{scale}"] = {
            "cold_ms": round(_cold_ms(params, rounds), 3),
            "skeleton_warm_ms": round(_skeleton_warm_ms(params, rounds), 3),
            "fully_warm_ms": round(_fully_warm_ms(params, rounds), 3),
        }
    # The annotation microbench only means something on real data; it
    # runs at bench_x5's fixed configuration (see _annotation_us).
    if any(scale >= 1 for scale in scales):
        report["annotation"] = _annotation_us(rounds)
    return report


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scales", type=int, nargs="+", default=[0, 1])
    parser.add_argument("--rounds", type=int, default=30)
    parser.add_argument("--out", type=Path, default=Path("BENCH_pr3.json"))
    args = parser.parse_args()
    report = build_report(args.scales, args.rounds)
    args.out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"wrote {args.out}")
    for name, numbers in report["benchmarks"].items():
        print(f"  {name}: {numbers}")
    if "annotation" in report:
        print(f"  annotation: {report['annotation']}")


if __name__ == "__main__":
    main()
