"""Machine-readable perf-trajectory report (``BENCH_pr<N>.json``).

Times the three serving regimes of ``bench_x4_skeleton_reuse`` — cold /
skeleton-warm / fully-warm — plus the annotation microbench pair of
``bench_x5_annotation``, the cold-path trio of ``bench_x7_cold_path``
(legacy per-pattern build / batched array-swept build / snapshot
restore), the corpus-sharding pair of ``bench_x8_sharding`` (single
executor vs 4 shard executors over the cache-thrashing corpus, with
the streaming merge's early-termination counters), the update pair
of ``bench_x9_updates`` (post-edit query under delta maintenance vs the
invalidation-storm cold rebuild), the memory pair of
``bench_x10_memory`` (DAG-compressed vs eager skeleton tier, plus the
mmap-vs-parse restore race), the fleet pair of ``bench_x11_fleet``
(peer-warmed first contact over HTTP vs the local cold build) and the
chaos numbers of ``bench_x12_chaos`` (degraded-mode p50 under a
one-shard outage, with the availability and recovery evidence), at one
or more data scales, and writes the latencies as JSON.  This is the artifact the CI
perf-smoke job uploads per commit, so the ROADMAP's "fast as the
hardware allows" goal has a recorded trajectory instead of docstring
folklore.

Run it directly (no pytest-benchmark needed)::

    PYTHONPATH=src python benchmarks/bench_report.py \
        --scales 0 1 --pr 10 --out BENCH_pr10.json

Scale 0 is a degenerate near-empty database — it keeps the smoke run
fast and exercises the empty-document and zero-result edge paths.
"""

from __future__ import annotations

import argparse
import itertools
import json
import platform
import time
from pathlib import Path

from repro.bench.experiments import build_database
from repro.core.cache import QueryCache
from repro.core.engine import KeywordSearchEngine
from repro.workloads.params import ExperimentParams
from repro.workloads.views import view_for_params

# Disjoint keyword sets cycled by the skeleton-warm regime so the PDT
# tier (disabled anyway) could never serve an iteration.
KEYWORD_SETS = [
    ("thomas",),
    ("control",),
    ("search",),
    ("thomas", "control"),
    ("analysis",),
    ("control", "search"),
]


def _median_ms(fn, rounds: int, warmup: int = 3) -> float:
    for _ in range(warmup):
        fn()
    samples = []
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    samples.sort()
    return samples[len(samples) // 2] * 1000.0


def _cold_ms(params: ExperimentParams, rounds: int) -> float:
    database = build_database(params)
    engine = KeywordSearchEngine(database, enable_cache=False)
    view = engine.define_view("bench", view_for_params(params))
    keywords = params.keywords()
    return _median_ms(
        lambda: engine.search(view, keywords, top_k=params.top_k), rounds
    )


def _skeleton_warm_ms(params: ExperimentParams, rounds: int) -> float:
    database = build_database(params)
    engine = KeywordSearchEngine(
        database, cache=QueryCache(pdt_capacity=0, prepared_capacity=0)
    )
    view = engine.define_view("bench", view_for_params(params))
    engine.search(view, params.keywords(), top_k=params.top_k)  # prime
    cycle = itertools.cycle(KEYWORD_SETS)
    return _median_ms(
        lambda: engine.search(view, next(cycle), top_k=params.top_k), rounds
    )


def _fully_warm_ms(params: ExperimentParams, rounds: int) -> float:
    database = build_database(params)
    engine = KeywordSearchEngine(database)
    view = engine.define_view("bench", view_for_params(params))
    keywords = params.keywords()
    engine.search(view, keywords, top_k=params.top_k)  # prime
    return _median_ms(
        lambda: engine.search(view, keywords, top_k=params.top_k), rounds
    )


def _annotation_us(rounds: int) -> dict[str, float]:
    """Median microseconds for the two annotation inner loops.

    Always measured at bench_x5's own configuration (scale 1, its
    keyword set) so the numbers are comparable across reports — the
    ``scale`` field in the output records this.
    """
    import sys

    sys.path.insert(0, str(Path(__file__).resolve().parent))
    from bench_x5_annotation import (
        PARAMS as X5_PARAMS,
        _merge_join,
        _per_node_bisect,
        _skeletons_and_lists,
    )

    skeletons, inv_lists = _skeletons_and_lists()

    def sweep():
        for doc, skeleton in skeletons.items():
            _merge_join(skeleton, inv_lists[doc])

    def bisect():
        for doc, skeleton in skeletons.items():
            _per_node_bisect(skeleton, inv_lists[doc])

    return {
        "scale": X5_PARAMS.data_scale,
        "merge_join_us": round(_median_ms(sweep, rounds) * 1000.0, 2),
        "per_node_bisect_us": round(_median_ms(bisect, rounds) * 1000.0, 2),
    }


def _cold_path_ms(params: ExperimentParams, rounds: int) -> dict[str, float]:
    """The bench_x7 trio at one scale: legacy / batched / snapshot restore.

    Delegates to :func:`repro.bench.experiments.measure_cold_path` —
    one measurement protocol shared with the X7 experiment table and the
    self-enforcing acceptance bench.
    """
    from repro.bench.experiments import measure_cold_path

    numbers = measure_cold_path(params, rounds)
    return {
        "legacy_cold_ms": round(numbers["legacy_ms"], 3),
        "batched_cold_ms": round(numbers["batched_ms"], 3),
        "speedup": round(numbers["speedup"], 2),
        "snapshot_restore_ms": round(numbers["snapshot_restore_ms"], 3),
    }


def _sharding_ms(rounds: int) -> dict[str, float]:
    """The bench_x8 pair: single executor vs 4 shard executors.

    Delegates to :func:`repro.bench.experiments.measure_sharding` — one
    measurement protocol shared with the X8 experiment table and the
    self-enforcing acceptance bench.  Always measured on bench_x8's own
    96-document corpus so the numbers are comparable across reports.
    """
    from repro.bench.experiments import measure_sharding

    numbers = measure_sharding(rounds=max(4, rounds // 6))
    return {
        "single_ms": round(numbers["single_ms"], 3),
        "sharded_ms": round(numbers["sharded_ms"], 3),
        "speedup": round(numbers["speedup"], 2),
        "merge_consumed": numbers["merge_consumed"],
        "merge_candidates": numbers["merge_candidates"],
        "merge_pruned": numbers["merge_pruned"],
    }


def _updates_ms(rounds: int) -> dict[str, float]:
    """The bench_x9 pair: post-edit query, delta-maintained vs storm.

    Delegates to :func:`repro.bench.experiments.measure_updates` — one
    measurement protocol shared with the X9 experiment table and the
    self-enforcing acceptance bench.  Always measured on a fresh scale-1
    INEX database (updates mutate in place, so the shared build cache is
    never used) with the survival counters alongside the wall times.
    """
    from repro.bench.experiments import measure_updates

    numbers = measure_updates(rounds=max(4, rounds // 6))
    return {
        "delta_ms": round(numbers["delta_ms"], 3),
        "storm_ms": round(numbers["storm_ms"], 3),
        "speedup": round(numbers["speedup"], 2),
        "delta_warm_rounds": numbers["delta_warm_rounds"],
        "delta_path_probes": numbers["delta_path_probes"],
        "storm_path_probes": numbers["storm_path_probes"],
    }


def _memory_numbers(rounds: int) -> dict[str, float]:
    """The bench_x10 pair: compressed vs eager skeleton tier + restores.

    Delegates to :func:`repro.bench.experiments.measure_memory` — one
    measurement protocol shared with the X10 experiment table and the
    self-enforcing acceptance bench.  Always measured on bench_x10's
    own repetitive 12-document corpus so the numbers are comparable
    across reports.
    """
    from repro.bench.experiments import measure_memory

    numbers = measure_memory(rounds=max(4, rounds // 6))
    return {
        "compressed_kib": round(numbers["compressed_kib"], 1),
        "eager_kib": round(numbers["eager_kib"], 1),
        "memory_reduction": round(numbers["memory_reduction"], 2),
        "warm_compressed_ms": round(numbers["warm_compressed_ms"], 3),
        "warm_eager_ms": round(numbers["warm_eager_ms"], 3),
        "warm_ratio": round(numbers["warm_ratio"], 3),
        "eager_restore_ms": round(numbers["eager_restore_ms"], 3),
        "mmap_restore_ms": round(numbers["mmap_restore_ms"], 3),
        "restore_speedup": round(numbers["restore_speedup"], 2),
        "shapes": numbers["shapes"],
        "shape_hits": numbers["shape_hits"],
    }


def _fleet_numbers(rounds: int) -> dict[str, float]:
    """The bench_x11 pair: peer-warmed first contact vs local cold build.

    Delegates to :func:`repro.bench.experiments.measure_fleet` — one
    measurement protocol shared with the X11 experiment table and the
    self-enforcing acceptance bench.  Always measured on bench_x11's
    own 6-document corpus (items=768) so the numbers are comparable
    across reports.
    """
    from repro.bench.experiments import measure_fleet

    numbers = measure_fleet(rounds=max(4, rounds // 6))
    return {
        "cold_build_ms": round(numbers["cold_build_ms"], 3),
        "fleet_fetch_ms": round(numbers["fleet_fetch_ms"], 3),
        "speedup": round(numbers["speedup"], 2),
        "fetched": numbers["fetched"],
        "fetch_failed": numbers["fetch_failed"],
        "fell_back": numbers["fell_back"],
        "path_probes": numbers["path_probes"],
    }


def _chaos_numbers(rounds: int) -> dict[str, float]:
    """The bench_x12 numbers: degraded-mode serving under an outage.

    Delegates to :func:`repro.bench.experiments.measure_chaos` — one
    measurement protocol shared with the X12 experiment table and the
    self-enforcing acceptance bench.  Always measured on bench_x12's
    own 48-document / 4-shard deployment so the numbers are comparable
    across reports.
    """
    from repro.bench.experiments import measure_chaos

    numbers = measure_chaos(rounds=max(4, rounds // 6))
    return {
        "healthy_p50_ms": round(numbers["healthy_p50_ms"], 3),
        "degraded_p50_ms": round(numbers["degraded_p50_ms"], 3),
        "degraded_over_healthy": round(numbers["degraded_over_healthy"], 3),
        "availability": numbers["availability"],
        "untyped_errors": numbers["untyped_errors"],
        "quarantine_engaged": numbers["quarantine_engaged"],
        "recovered_identical": numbers["recovered_identical"],
        "injected_faults": numbers["injected_faults"],
    }


def build_report(scales: list[int], rounds: int, pr: int) -> dict:
    report: dict = {
        "pr": pr,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "rounds": rounds,
        "benchmarks": {},
        "cold_path": {},
    }
    for scale in scales:
        params = ExperimentParams(data_scale=scale)
        report["benchmarks"][f"scale_{scale}"] = {
            "cold_ms": round(_cold_ms(params, rounds), 3),
            "skeleton_warm_ms": round(_skeleton_warm_ms(params, rounds), 3),
            "fully_warm_ms": round(_fully_warm_ms(params, rounds), 3),
        }
        report["cold_path"][f"scale_{scale}"] = _cold_path_ms(params, rounds)
    # The annotation microbench only means something on real data; it
    # runs at bench_x5's fixed configuration (see _annotation_us).
    if any(scale >= 1 for scale in scales):
        report["annotation"] = _annotation_us(rounds)
    report["sharding"] = _sharding_ms(rounds)
    report["updates"] = _updates_ms(rounds)
    report["memory"] = _memory_numbers(rounds)
    report["fleet"] = _fleet_numbers(rounds)
    report["chaos"] = _chaos_numbers(rounds)
    return report


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scales", type=int, nargs="+", default=[0, 1])
    parser.add_argument("--rounds", type=int, default=30)
    parser.add_argument("--pr", type=int, default=10)
    parser.add_argument("--out", type=Path, default=Path("BENCH_pr10.json"))
    args = parser.parse_args()
    report = build_report(args.scales, args.rounds, args.pr)
    args.out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"wrote {args.out}")
    for name, numbers in report["benchmarks"].items():
        print(f"  {name}: {numbers}")
    for name, numbers in report["cold_path"].items():
        print(f"  cold_path {name}: {numbers}")
    if "annotation" in report:
        print(f"  annotation: {report['annotation']}")
    print(f"  sharding: {report['sharding']}")
    print(f"  updates: {report['updates']}")
    print(f"  memory: {report['memory']}")
    print(f"  fleet: {report['fleet']}")
    print(f"  chaos: {report['chaos']}")


if __name__ == "__main__":
    main()
