"""Ablation: the InPdt fast path (paper Section 4.2.2.1, optimization 1).

With the fast path off, every candidate element funnels through the
pdt-cache (pending) machinery and resolves only when its ancestors close.
Output is identical (asserted in tests); this benchmark quantifies the
optimization's effect on PDT generation cost.
"""

import pytest

from repro.core.pdt import generate_pdt

KEYWORDS = ("thomas", "control")


@pytest.mark.parametrize("fast_path", [True, False], ids=["fast", "no-fast"])
def test_pdt_generation_inpdt(benchmark, efficient, fast_path):
    view = efficient.get_view("bench")

    def build():
        return [
            generate_pdt(
                qpt,
                efficient.database.get(doc_name).path_index,
                efficient.database.get(doc_name).inverted_index,
                KEYWORDS,
                inpdt_fast_path=fast_path,
            )
            for doc_name, qpt in view.qpts.items()
        ]

    benchmark(build)
