"""X9 (extension): sub-document updates — delta maintenance vs the storm.

Not a paper figure — this locks down the write path the way bench_x8
locks down the scatter-gather layer.  Two engines share one INEX
database (see ``repro.bench.experiments.measure_updates``):

* **delta** — the default engine: a subtree edit emits a typed
  :class:`~repro.storage.update.DocumentDelta`, patchable skeletons are
  migrated across the generation bump and patched in place, and the view
  is re-warmed — the next query runs off surviving cache tiers;
* **storm** — ``delta_maintenance=False``: the same edit silently
  strands every generation-keyed cache entry, so the next query pays the
  full cold build (probe + skeleton + merge), which is what every write
  used to cost.

``test_small_edit_5x_cheaper_than_invalidation_storm`` is the
self-enforcing acceptance criterion of the updates PR:

* the post-edit query on the delta engine must be **≥ 5x** faster than
  the storm engine's cold rebuild (interleaved minimums, gc paused);
* the survival evidence is asserted deterministically on every attempt:
  every delta round was served from a warm tier with **zero path-index
  probes**, and every storm round was a miss that *did* probe.

Ranking correctness after edits is not re-proven here — that is the
difftest ``mutations`` configuration's job (bit-for-bit against
rebuild-from-scratch and the naive baseline); this file owns the
performance claim.
"""

from __future__ import annotations

from repro.bench.experiments import measure_updates

SPEEDUP_FLOOR = 5.0


# -- pytest-benchmark variants (the usual statistics tables) ------------------


def _shared_setup():
    from repro.bench.experiments import KEYWORDS_BY_SELECTIVITY
    from repro.core.engine import KeywordSearchEngine
    from repro.workloads.inex import INEXConfig, generate_inex_database
    from repro.workloads.views import authors_articles_view

    database = generate_inex_database(INEXConfig())
    view_text = authors_articles_view()
    keywords = KEYWORDS_BY_SELECTIVITY["medium"]
    return database, view_text, keywords, KeywordSearchEngine


def test_post_edit_query_delta(benchmark):
    database, view_text, keywords, engine_cls = _shared_setup()
    engine = engine_cls(database)
    view = engine.define_view("v", view_text)
    engine.search(view, keywords, top_k=5)
    root_id = database.get("articles.xml").document.root.dewey
    state = {"inserted": None}

    def edit_then_query():
        if state["inserted"] is None:
            delta = database.insert_subtree(
                "articles.xml", root_id, "<zaux>editorial aside</zaux>"
            )
            state["inserted"] = delta.edit_id
        else:
            database.delete_subtree("articles.xml", state["inserted"])
            state["inserted"] = None
        engine.search(view, keywords, top_k=5)

    edit_then_query()
    benchmark(edit_then_query)


def test_post_edit_query_storm(benchmark):
    database, view_text, keywords, engine_cls = _shared_setup()
    engine = engine_cls(database, delta_maintenance=False)
    view = engine.define_view("v", view_text)
    engine.search(view, keywords, top_k=5)
    root_id = database.get("articles.xml").document.root.dewey
    state = {"inserted": None}

    def edit_then_query():
        if state["inserted"] is None:
            delta = database.insert_subtree(
                "articles.xml", root_id, "<zaux>editorial aside</zaux>"
            )
            state["inserted"] = delta.edit_id
        else:
            database.delete_subtree("articles.xml", state["inserted"])
            state["inserted"] = None
        engine.search(view, keywords, top_k=5)

    edit_then_query()
    benchmark(edit_then_query)


# -- self-enforcing acceptance criteria ---------------------------------------


def test_small_edit_5x_cheaper_than_invalidation_storm():
    """Acceptance: after one patchable subtree edit, the delta-maintained
    engine answers ≥ 5x faster than the storm baseline's cold rebuild —
    and the speedup is attributable: warm-tier hits with zero path
    probes on the delta side, misses with real probes on the storm side.

    Up to three measurement attempts: scheduler noise can only *lower* a
    measured ratio, so the criterion passes if any attempt clears the
    floor.  The survival counters are deterministic — they are asserted
    on every attempt, or the delta machinery is broken, not noisy.
    """
    attempts = []
    for _ in range(3):
        numbers = measure_updates()
        rounds = numbers["rounds"]
        assert numbers["delta_warm_rounds"] == rounds, (
            "a post-edit query on the delta engine fell out of the warm "
            f"tiers: {numbers['delta_warm_rounds']:.0f} of {rounds:.0f} "
            "rounds warm"
        )
        assert numbers["delta_path_probes"] == 0, (
            "the delta engine re-probed the path index after a patchable "
            f"edit ({numbers['delta_path_probes']:.0f} probes)"
        )
        assert numbers["storm_miss_rounds"] == rounds, (
            "the storm baseline unexpectedly kept warm state: "
            f"{numbers['storm_miss_rounds']:.0f} of {rounds:.0f} rounds "
            "were misses"
        )
        assert numbers["storm_path_probes"] > 0, (
            "the storm baseline made no path-index probes — it did not "
            "actually rebuild"
        )
        attempts.append(numbers)
        if numbers["speedup"] >= SPEEDUP_FLOOR:
            return
    summary = ", ".join(
        f"{n['speedup']:.2f}x (delta {n['delta_ms']:.1f} ms / "
        f"storm {n['storm_ms']:.1f} ms)"
        for n in attempts
    )
    raise AssertionError(
        f"post-edit speedup below the {SPEEDUP_FLOOR}x floor in every "
        f"attempt: {summary}"
    )
