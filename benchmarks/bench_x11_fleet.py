"""X11 (extension): fleet serving — peer-warmed first contact over HTTP.

Not a paper figure — this locks down the fleet PR the way bench_x7
locks down the local cold path.  A warm peer process serves its stored
v2 snapshot bytes over ``GET /snapshots/<key>``; a cold fleet member
with an *empty* local snapshot directory acquires the corpus skeleton
set through a :class:`~repro.core.snapshot_net.NetworkedSkeletonStore`
(fetch, O(1) structural validation, write-through, mmap restore)
instead of rebuilding it from path probes (see
``repro.bench.experiments.measure_fleet`` for the protocol).

``test_fleet_floors_hold`` is the self-enforcing acceptance criterion
of the fleet PR: peer-warmed first contact is **≥ 3x** faster than the
local cold build.

The correctness evidence is deterministic and asserted on every
attempt — the clock being kind is not enough:

* the fetch counters prove the bytes crossed the wire: ``fetched``
  equals targets x sweeps with zero ``fetch_failed`` / ``fell_back``;
* an engine warmed *through* the networked store restores every
  target (``"snapshot"``) with **zero** path-index probes;
* the peer-warmed engine's ranked outcomes exactly equal the peer's.

Byte identity of served pages across the seed matrix — and the
dead-peer fallback — is the fleet difftest's job
(``tests/difftest/test_differential_fleet.py``); this file owns the
first-contact latency claim.
"""

from __future__ import annotations

from repro.bench.experiments import measure_fleet

FLEET_FLOOR = 3.0


# -- pytest-benchmark variants (the usual statistics tables) ------------------


def _fleet_fixture():
    import tempfile
    from pathlib import Path

    from repro.bench.experiments import _feed_view, _repetitive_corpus
    from repro.core.engine import KeywordSearchEngine
    from repro.core.snapshot import SkeletonStore
    from repro.serving import BackgroundHTTPServing, ServerConfig
    from repro.storage.database import XMLDatabase

    pool = [f"fleet{i:02d}" for i in range(8)]
    docs = _repetitive_corpus(6, 768, pool)
    names = sorted(docs)

    def fresh_database():
        database = XMLDatabase()
        for name in names:
            database.load_document(name, docs[name])
        return database

    tmp = Path(tempfile.mkdtemp(prefix="bench-x11-"))
    peer_engine = KeywordSearchEngine(
        fresh_database(), snapshot_store=SkeletonStore(tmp / "peer")
    )
    views = [
        peer_engine.define_view(f"v{i}", _feed_view(name))
        for i, name in enumerate(names)
    ]
    for view in views:
        peer_engine.warm_view(view)
    serving = BackgroundHTTPServing(peer_engine, ServerConfig(workers=2))
    serving.start()
    member_db = fresh_database()
    member = KeywordSearchEngine(member_db)
    member_views = [
        member.define_view(f"v{i}", _feed_view(name))
        for i, name in enumerate(names)
    ]
    keys = [
        (
            member_db.get(name).fingerprint,
            member_views[i].qpts[name].content_hash,
        )
        for i, name in enumerate(names)
    ]
    return tmp, serving, member_db, member_views, keys, names


def test_cold_build_sweep(benchmark):
    from repro.core.pdt import build_skeleton

    _, serving, database, views, _, names = _fleet_fixture()
    try:

        def sweep():
            for i, name in enumerate(names):
                build_skeleton(
                    views[i].qpts[name], database.get(name).path_index
                )

        sweep()
        benchmark(sweep)
    finally:
        serving.stop()


def test_peer_fetch_sweep(benchmark):
    from repro.core.snapshot import SkeletonStore
    from repro.core.snapshot_net import (
        HTTPSnapshotPeer,
        NetworkedSkeletonStore,
    )

    tmp, serving, _, _, keys, _ = _fleet_fixture()
    try:
        state = {"round": 0}

        def sweep():
            # A fresh empty local directory each round: every load
            # must miss locally and cross the wire.
            state["round"] += 1
            store = NetworkedSkeletonStore(
                SkeletonStore(tmp / f"member{state['round']}", mmap_mode=True),
                HTTPSnapshotPeer(serving.url, timeout=30.0),
            )
            for fingerprint, qpt_hash in keys:
                assert store.load(fingerprint, qpt_hash) is not None

        sweep()
        benchmark(sweep)
    finally:
        serving.stop()


# -- self-enforcing acceptance criteria ---------------------------------------


def test_fleet_floors_hold():
    """Acceptance: peer-warmed first contact ≥ 3x faster than the local
    cold build — with the evidence that the fast path really was the
    network path asserted on every attempt.

    Up to three measurement attempts: scheduler noise can only *hurt*
    the measured ratio, so the timing floor passes if any attempt
    clears it.  The counters, the zero-probe warm-up and the ranked
    equality are deterministic — they hold on every attempt, or the
    networked tier is broken, not noisy.
    """
    attempts = []
    for _ in range(3):
        numbers = measure_fleet()
        assert numbers["fetched"] == numbers["expected_fetches"] > 0, (
            f"every measured load must have crossed the wire: {numbers}"
        )
        assert numbers["fetch_failed"] == 0 and numbers["fell_back"] == 0, (
            f"the measured sweeps must not have fallen back: {numbers}"
        )
        assert numbers["snapshot_restored"] == 1.0, (
            "warm-up through the networked store did not restore every "
            f"target from the peer: {numbers}"
        )
        assert numbers["path_probes"] == 0.0, (
            "a peer-warmed member performed path-index probes: "
            f"{numbers}"
        )
        assert numbers["identical_results"] == 1.0, (
            "the peer-warmed engine ranked the corpus differently from "
            "the peer itself"
        )
        attempts.append(numbers)
        if numbers["speedup"] >= FLEET_FLOOR:
            return
    summary = ", ".join(
        f"{n['speedup']:.2f}x (cold {n['cold_build_ms']:.1f}ms / fleet "
        f"{n['fleet_fetch_ms']:.1f}ms)"
        for n in attempts
    )
    raise AssertionError(
        f"fleet floor ({FLEET_FLOOR}x) missed in every attempt: {summary}"
    )
