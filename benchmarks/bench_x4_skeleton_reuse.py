"""X4 (extension): cross-query PDT skeleton reuse.

Not a paper figure — this measures the skeleton tier added on top of
the query cache.  Three serving regimes for the same view:

* **cold**          — no cache: every query pays path-index probes, the
  structural merge pass, inverted-list probes, annotation and the full
  view evaluation;
* **skeleton-warm** — the ``(view, doc)`` skeleton is cached but every
  query carries a *never-seen* keyword set: zero path-index probes, no
  merge pass, no tree construction and (the PDT trees being
  keyword-independent) no re-evaluation — only inverted-list probes,
  one tf merge-join sweep per keyword, scoring and top-k;
* **fully-warm**    — the exact ``(view, doc, keywords)`` PDT is
  cached: no index work at all.

Recorded medians at scale 1 (same machine, pytest-benchmark):

========  =========  ==============  ============
PR        cold       skeleton-warm   fully-warm
========  =========  ==============  ============
PR 2      8.39 ms    6.11 ms         5.35 ms
PR 3      8.70 ms    0.18 ms         0.16 ms
========  =========  ==============  ============

PR 3's packed Dewey keys + merge-join annotation + shared skeleton
trees + the evaluated cache tier turned the skeleton-warm path into an
array sweep: ~34x faster than PR 2 (acceptance floor was 1.5x).  The
cold path is unchanged within noise — the skeleton build does strictly
more precomputation, repaid on the first warm query.

The assertions are the acceptance criterion: a skeleton-warm query on
the same ``(view, doc)`` with a disjoint keyword set performs **zero**
path-index probes, the engine's phase timings attribute the time to the
postings half rather than the skeleton half, and the view evaluation is
served from the evaluated tier.
"""

import itertools

from conftest import make_engine_and_view
from repro.core.cache import QueryCache
from repro.core.engine import KeywordSearchEngine
from repro.bench.experiments import build_database
from repro.workloads.params import ExperimentParams
from repro.workloads.views import view_for_params

PARAMS = ExperimentParams(data_scale=1)

# Disjoint keyword sets cycled by the skeleton-warm benchmark so no
# iteration can be served by the (disabled anyway) PDT tier.
KEYWORD_SETS = [
    ("thomas",),
    ("control",),
    ("search",),
    ("thomas", "control"),
    ("analysis",),
    ("control", "search"),
]


def path_probes(engine, view):
    return sum(
        engine.database.get(name).path_index.probe_count
        for name in view.document_names
    )


def inv_probes(engine, view):
    return sum(
        engine.database.get(name).inverted_index.probe_count
        for name in view.document_names
    )


def test_cold_pipeline(benchmark):
    engine, view = make_engine_and_view(PARAMS, enable_cache=False)
    keywords = PARAMS.keywords()
    engine.database.reset_access_counters()
    benchmark(lambda: engine.search(view, keywords, top_k=PARAMS.top_k))
    assert path_probes(engine, view) > 0
    assert inv_probes(engine, view) > 0


def test_skeleton_warm_fresh_keywords(benchmark):
    # PDT and prepared tiers off: every iteration must run the
    # skeleton-annotation path end to end.
    database = build_database(PARAMS)
    engine = KeywordSearchEngine(
        database, cache=QueryCache(pdt_capacity=0, prepared_capacity=0)
    )
    view = engine.define_view("bench", view_for_params(PARAMS))
    engine.search(view, PARAMS.keywords(), top_k=PARAMS.top_k)  # warm skeletons
    engine.database.reset_access_counters()
    cycle = itertools.cycle(KEYWORD_SETS)

    outcome = benchmark(
        lambda: engine.search_detailed(
            view, next(cycle), top_k=PARAMS.top_k
        )
    )
    # The acceptance criterion: zero path-index probes across every
    # skeleton-warm iteration; the inverted index was consulted.
    assert set(outcome.cache_hits.values()) == {"skeleton"}
    assert path_probes(engine, view) == 0
    assert inv_probes(engine, view) > 0
    assert engine.cache.stats()["skeleton"]["hits"] > 0
    # Phase attribution: structural time collapsed, postings time paid.
    assert outcome.timings.pdt_postings > 0
    assert outcome.timings.pdt_skeleton < outcome.timings.pdt
    # The keyword-independent evaluation was served from the evaluated
    # tier — the warm path never re-ran the XQuery evaluator.
    assert outcome.evaluated_hit


def test_fully_warm_repeat_query(benchmark):
    engine, view = make_engine_and_view(PARAMS, enable_cache=True)
    keywords = PARAMS.keywords()
    first = engine.search_detailed(view, keywords, top_k=PARAMS.top_k)
    assert set(first.cache_hits.values()) == {"miss"}

    engine.database.reset_access_counters()
    outcome = benchmark(
        lambda: engine.search_detailed(view, keywords, top_k=PARAMS.top_k)
    )
    assert set(outcome.cache_hits.values()) == {"pdt"}
    assert path_probes(engine, view) == 0
    assert inv_probes(engine, view) == 0
