"""F14 (Figure 14): per-module cost of the Efficient pipeline.

Benchmarks each phase in isolation: PDT generation alone (plus its
skeleton/annotation halves, so the figure stays attributable now that
the skeleton is cached across queries), evaluation over pre-built PDTs,
and post-processing (scoring + top-k materialization).
"""

from repro.core.pdt import annotate_skeleton, build_skeleton, generate_pdt
from repro.core.prepare import prepare_inv_lists, prepare_lists
from repro.core.rewrite import make_pdt_resolver
from repro.core.scoring import score_results, select_top_k
from repro.xmlmodel.node import XMLNode
from repro.xquery.evaluator import EvalContext, Evaluator

KEYWORDS = ("thomas", "control")


def _build_pdts(efficient):
    view = efficient.get_view("bench")
    pdts = {}
    for doc_name, qpt in view.qpts.items():
        indexed = efficient.database.get(doc_name)
        lists = prepare_lists(
            qpt, indexed.path_index, indexed.inverted_index, KEYWORDS
        )
        pdts[doc_name] = generate_pdt(
            qpt, indexed.path_index, indexed.inverted_index, KEYWORDS, lists=lists
        )
    return pdts


def test_pdt_generation(benchmark, efficient):
    benchmark(_build_pdts, efficient)


def test_pdt_skeleton_pass(benchmark, efficient):
    # The keyword-independent half: path probes + the structural merge.
    # This is the work the skeleton cache tier amortizes across queries.
    view = efficient.get_view("bench")

    def build_all():
        return {
            doc_name: build_skeleton(
                qpt, efficient.database.get(doc_name).path_index
            )
            for doc_name, qpt in view.qpts.items()
        }

    benchmark(build_all)


def test_pdt_annotation_pass(benchmark, efficient):
    # The per-query half: inverted-list probes + tf annotation over a
    # pre-built skeleton — all that remains on a skeleton-tier hit.
    view = efficient.get_view("bench")
    skeletons = {
        doc_name: build_skeleton(
            qpt, efficient.database.get(doc_name).path_index
        )
        for doc_name, qpt in view.qpts.items()
    }

    def annotate_all():
        return {
            doc_name: annotate_skeleton(
                skeleton,
                prepare_inv_lists(
                    efficient.database.get(doc_name).inverted_index, KEYWORDS
                ),
                KEYWORDS,
            )
            for doc_name, skeleton in skeletons.items()
        }

    benchmark(annotate_all)


def test_evaluator_over_pdts(benchmark, efficient):
    view = efficient.get_view("bench")
    pdts = _build_pdts(efficient)
    evaluator = Evaluator(EvalContext(resolver=make_pdt_resolver(pdts)))
    benchmark(lambda: evaluator.evaluate(view.expr))


def test_post_processing(benchmark, efficient):
    view = efficient.get_view("bench")
    pdts = _build_pdts(efficient)
    evaluator = Evaluator(EvalContext(resolver=make_pdt_resolver(pdts)))
    results = [
        item
        for item in evaluator.evaluate(view.expr)
        if isinstance(item, XMLNode)
    ]

    def post():
        # tf_source resolves the shared skeleton trees' content slots.
        outcome = score_results(results, KEYWORDS, tf_source=pdts)
        return select_top_k(outcome, 10)

    benchmark(post)
