"""F14 (Figure 14): per-module cost of the Efficient pipeline.

Benchmarks each phase in isolation: PDT generation alone, evaluation over
pre-built PDTs, and post-processing (scoring + top-k materialization).
"""

from repro.core.pdt import generate_pdt
from repro.core.prepare import prepare_lists
from repro.core.rewrite import make_pdt_resolver
from repro.core.scoring import score_results, select_top_k
from repro.xmlmodel.node import XMLNode
from repro.xquery.evaluator import EvalContext, Evaluator

KEYWORDS = ("thomas", "control")


def _build_pdts(efficient):
    view = efficient.get_view("bench")
    pdts = {}
    for doc_name, qpt in view.qpts.items():
        indexed = efficient.database.get(doc_name)
        lists = prepare_lists(
            qpt, indexed.path_index, indexed.inverted_index, KEYWORDS
        )
        pdts[doc_name] = generate_pdt(
            qpt, indexed.path_index, indexed.inverted_index, KEYWORDS, lists=lists
        )
    return pdts


def test_pdt_generation(benchmark, efficient):
    benchmark(_build_pdts, efficient)


def test_evaluator_over_pdts(benchmark, efficient):
    view = efficient.get_view("bench")
    pdts = _build_pdts(efficient)
    evaluator = Evaluator(EvalContext(resolver=make_pdt_resolver(pdts)))
    benchmark(lambda: evaluator.evaluate(view.expr))


def test_post_processing(benchmark, efficient):
    view = efficient.get_view("bench")
    pdts = _build_pdts(efficient)
    evaluator = Evaluator(EvalContext(resolver=make_pdt_resolver(pdts)))
    results = [
        item
        for item in evaluator.evaluate(view.expr)
        if isinstance(item, XMLNode)
    ]

    def post():
        outcome = score_results(results, KEYWORDS)
        return select_top_k(outcome, 10)

    benchmark(post)
