"""X5 (extension): merge-join annotation vs per-node binary searches.

Not a paper figure — this isolates the per-query half of PDT generation
(the skeleton-warm hot path) and compares the two ways of computing each
content node's subtree tf from a posting list:

* **per-node bisect** (the pre-packed-key implementation): for every
  content node and keyword, ``PostingList.subtree_tf`` runs two binary
  searches over the list — O(skeleton · keywords · log postings);
* **merge-join sweep** (current): one ``cumulative_below`` pass per
  keyword over the skeleton's precomputed, sorted subtree bounds —
  O(skeleton + postings) per keyword, all flat-array reads.

``test_merge_join_beats_per_node_bisect`` is the self-enforcing
acceptance check: it times both with ``time.perf_counter`` medians and
asserts the sweep wins at scale 1.  The pytest-benchmark variants give
the usual statistics table.
"""

from __future__ import annotations

import time

from conftest import make_engine_and_view
from repro.core.pdt import annotate_skeleton, build_skeleton
from repro.core.prepare import prepare_inv_lists
from repro.workloads.params import ExperimentParams

PARAMS = ExperimentParams(data_scale=1)
KEYWORDS = ("thomas", "control", "search")


def _skeletons_and_lists():
    engine, view = make_engine_and_view(PARAMS)
    skeletons = {}
    inv_lists = {}
    for doc_name, qpt in view.qpts.items():
        indexed = engine.database.get(doc_name)
        skeletons[doc_name] = build_skeleton(qpt, indexed.path_index)
        inv_lists[doc_name] = prepare_inv_lists(
            indexed.inverted_index, KEYWORDS
        )
    return skeletons, inv_lists


def _per_node_bisect(skeleton, lists):
    """The PR 2 annotation inner loop: subtree_tf per (node, keyword)."""
    arrays = {}
    for keyword in KEYWORDS:
        posting_list = lists[keyword]
        arrays[keyword] = [
            posting_list.subtree_tf(skeleton.dewey_ids[position])
            for position, slot in enumerate(skeleton.slots)
            if slot is not None
        ]
    return arrays


def _merge_join(skeleton, lists):
    """The current annotation inner loop: one sweep per keyword."""
    arrays = {}
    for keyword in KEYWORDS:
        counts = lists[keyword].cumulative_below(skeleton.bounds)
        arrays[keyword] = [
            counts[high] - counts[low] for low, high in skeleton.slot_bounds
        ]
    return arrays


def test_annotation_per_node_bisect(benchmark):
    skeletons, inv_lists = _skeletons_and_lists()
    benchmark(
        lambda: {
            doc: _per_node_bisect(skeleton, inv_lists[doc])
            for doc, skeleton in skeletons.items()
        }
    )


def test_annotation_merge_join(benchmark):
    skeletons, inv_lists = _skeletons_and_lists()
    benchmark(
        lambda: {
            doc: _merge_join(skeleton, inv_lists[doc])
            for doc, skeleton in skeletons.items()
        }
    )


def test_annotate_skeleton_end_to_end(benchmark):
    # The full per-query half as the engine runs it (sweep + result
    # assembly over the shared tree).
    skeletons, inv_lists = _skeletons_and_lists()
    benchmark(
        lambda: {
            doc: annotate_skeleton(skeleton, inv_lists[doc], KEYWORDS)
            for doc, skeleton in skeletons.items()
        }
    )


def _median_seconds(fn, rounds=30):
    samples = []
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    samples.sort()
    return samples[len(samples) // 2]


def test_merge_join_beats_per_node_bisect():
    """Acceptance: the sweep outruns the bisect baseline at scale 1 —
    and computes identical tfs."""
    skeletons, inv_lists = _skeletons_and_lists()
    for doc, skeleton in skeletons.items():
        assert _merge_join(skeleton, inv_lists[doc]) == _per_node_bisect(
            skeleton, inv_lists[doc]
        )

    def bisect_pass():
        for doc, skeleton in skeletons.items():
            _per_node_bisect(skeleton, inv_lists[doc])

    def sweep_pass():
        for doc, skeleton in skeletons.items():
            _merge_join(skeleton, inv_lists[doc])

    bisect_pass(), sweep_pass()  # warm up
    bisect_median = _median_seconds(bisect_pass)
    sweep_median = _median_seconds(sweep_pass)
    assert sweep_median < bisect_median, (
        f"merge-join ({sweep_median * 1e6:.1f}us) did not beat per-node "
        f"bisect ({bisect_median * 1e6:.1f}us)"
    )
