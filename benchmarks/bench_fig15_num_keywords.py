"""F15 (Figure 15): varying the number of keywords (1-5)."""

import pytest

from conftest import make_engine_and_view
from repro.workloads.params import ExperimentParams


@pytest.mark.parametrize("num_keywords", [1, 2, 3, 4, 5])
def test_num_keywords(benchmark, num_keywords):
    params = ExperimentParams(data_scale=1, num_keywords=num_keywords)
    engine, view = make_engine_and_view(params)
    keywords = params.keywords()
    benchmark(lambda: engine.search(view, keywords, top_k=params.top_k))
