"""T1 (Table 1): the experimental parameter grid.

Not a timing benchmark — prints the grid once so a benchmark run documents
the parameter space it draws from.
"""

from repro.bench.experiments import run_params_table


def test_params_table(benchmark):
    table = benchmark.pedantic(run_params_table, rounds=1, iterations=1)
    assert len(table.rows) == 8
