"""X1 (Sec. 5.2.3): varying the average size of view elements (1X-5X)."""

import pytest

from conftest import make_engine_and_view
from repro.workloads.params import ExperimentParams


@pytest.mark.parametrize("element_size", [1, 2, 3])
def test_element_size(benchmark, element_size):
    params = ExperimentParams(data_scale=1, element_size=element_size)
    engine, view = make_engine_and_view(params)
    keywords = params.keywords()
    benchmark(lambda: engine.search(view, keywords, top_k=params.top_k))
