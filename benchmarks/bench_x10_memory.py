"""X10 (extension): memory at scale — DAG compression + zero-copy restores.

Not a paper figure — this locks down the memory PR the way bench_x9
locks down the write path.  One repetitive corpus (structurally
identical feed documents, the shape hash-consing exists for — see
``repro.bench.experiments.measure_memory``), three claims:

* **memory** — the skeleton tier of a ``dag_compression=True`` engine
  (shared :class:`~repro.core.shapes.ShapeTable` included) holds the
  corpus in a fraction of the bytes the eager ``PDTSkeleton`` tier
  needs;
* **warm latency** — skeleton-warm queries (a fresh keyword every
  round, so the annotation merge-join really runs) stay within noise of
  the uncompressed engine: sharing shapes must not tax the read path;
* **restore** — ``SkeletonStore(mmap_mode=True)`` serves first contact
  by mapping pages and validating the header, instead of parsing every
  column eagerly.

``test_memory_floors_hold`` is the self-enforcing acceptance criterion
of the memory PR:

* skeleton-tier bytes shrink **≥ 3x** on the repetitive corpus;
* skeleton-warm latency is **≤ 1.25x** of the uncompressed engine;
* the mmap restore is **≥ 2x** faster than the eager parse-restore.

The correctness evidence is deterministic and asserted on every
attempt: ranked outcomes of the two engines are exactly equal, mapped
and eager restores re-serialize byte-identically, and the shape table
actually shared (hits, few distinct shapes).  Bit identity across the
whole seed matrix is the ``compressed`` difftest configuration's job;
this file owns the resource claims.
"""

from __future__ import annotations

from repro.bench.experiments import measure_memory

MEMORY_FLOOR = 3.0
WARM_RATIO_CEILING = 1.25
RESTORE_FLOOR = 2.0


# -- pytest-benchmark variants (the usual statistics tables) ------------------


def _warm_engine(dag: bool):
    from repro.bench.experiments import _feed_view, _repetitive_corpus
    from repro.core.engine import KeywordSearchEngine
    from repro.storage.database import XMLDatabase

    pool = [f"mem{i:02d}" for i in range(8)]
    docs = _repetitive_corpus(12, 48, pool)
    database = XMLDatabase()
    for name in sorted(docs):
        database.load_document(name, docs[name])
    engine = KeywordSearchEngine(database, dag_compression=dag)
    views = [
        engine.define_view(f"v{i}", _feed_view(name))
        for i, name in enumerate(sorted(docs))
    ]
    for view in views:
        engine.warm_view(view)
    return engine, views, pool


def _benchmark_warm_sweep(benchmark, dag: bool):
    engine, views, pool = _warm_engine(dag)
    state = {"round": 0}

    def sweep():
        keywords = [pool[state["round"] % len(pool)]]
        state["round"] += 1
        for view in views:
            engine.search(view, keywords, top_k=5)

    sweep()
    benchmark(sweep)


def test_skeleton_warm_sweep_compressed(benchmark):
    _benchmark_warm_sweep(benchmark, dag=True)


def test_skeleton_warm_sweep_eager(benchmark):
    _benchmark_warm_sweep(benchmark, dag=False)


# -- self-enforcing acceptance criteria ---------------------------------------


def test_memory_floors_hold():
    """Acceptance: ≥ 3x smaller skeleton tier, warm queries ≤ 1.25x of
    the uncompressed engine, mmap restores ≥ 2x faster than the eager
    parse — with the evidence that the representations agree bit-for-bit
    asserted on every attempt.

    Up to three measurement attempts: scheduler noise can only *hurt* a
    measured ratio, so the timing floors pass if any attempt clears
    them.  The memory ratio and the correctness evidence are
    deterministic — they hold on every attempt, or the compression
    machinery is broken, not noisy.
    """
    attempts = []
    for _ in range(3):
        numbers = measure_memory()
        assert numbers["identical_results"] == 1.0, (
            "compressed and eager engines ranked the corpus differently"
        )
        assert numbers["snapshot_bit_identical"] == 1.0, (
            "mapped and eager restores re-serialized to different bytes"
        )
        assert numbers["shape_hits"] > 0, (
            "the shape table never shared a subtree — interning is off"
        )
        assert numbers["shapes"] < numbers["skeletons"] * 4, (
            f"{numbers['shapes']:.0f} distinct shapes for "
            f"{numbers['skeletons']:.0f} isomorphic skeletons — the "
            "corpus did not actually share structure"
        )
        assert numbers["memory_reduction"] >= MEMORY_FLOOR, (
            f"skeleton tier shrank only "
            f"{numbers['memory_reduction']:.2f}x "
            f"(compressed {numbers['compressed_kib']:.0f} KiB / eager "
            f"{numbers['eager_kib']:.0f} KiB) — floor is "
            f"{MEMORY_FLOOR}x and byte accounting is deterministic"
        )
        attempts.append(numbers)
        if (
            numbers["warm_ratio"] <= WARM_RATIO_CEILING
            and numbers["restore_speedup"] >= RESTORE_FLOOR
        ):
            return
    summary = ", ".join(
        f"warm {n['warm_ratio']:.2f}x (ceiling {WARM_RATIO_CEILING}x), "
        f"restore {n['restore_speedup']:.2f}x (floor {RESTORE_FLOOR}x)"
        for n in attempts
    )
    raise AssertionError(
        f"timing floors missed in every attempt: {summary}"
    )
