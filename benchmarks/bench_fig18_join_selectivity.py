"""F18 (Figure 18): varying join selectivity (1X, 0.5X, 0.2X, 0.1X)."""

import pytest

from conftest import make_engine_and_view
from repro.workloads.params import ExperimentParams


@pytest.mark.parametrize("join_selectivity", [1.0, 0.5, 0.2, 0.1])
def test_join_selectivity(benchmark, join_selectivity):
    params = ExperimentParams(data_scale=1, join_selectivity=join_selectivity)
    engine, view = make_engine_and_view(params)
    keywords = params.keywords()
    benchmark(lambda: engine.search(view, keywords, top_k=params.top_k))
