"""F20 (Figure 20): varying K in top-K (1..40).

The paper's shape: flat — materializing a few more winners is nearly free
because only the top-k results ever touch document storage.  Since the
streaming-top-k change, the default search is *fully* deferred: ranking
alone performs zero document-store accesses regardless of K, which the
benchmark asserts.  The eager variant (``materialize=True``) is the old
behavior, kept as the contrast point.
"""

import pytest

from conftest import make_engine_and_view
from repro.workloads.params import ExperimentParams


@pytest.mark.parametrize("top_k", [1, 10, 20, 30, 40])
def test_top_k(benchmark, top_k):
    params = ExperimentParams(data_scale=1, top_k=top_k)
    engine, view = make_engine_and_view(params)
    keywords = params.keywords()
    engine.database.reset_access_counters()
    results = benchmark(lambda: engine.search(view, keywords, top_k=top_k))
    # Deferred materialization: ranking never touched the store.
    for name in view.document_names:
        assert engine.database.get(name).store.access_count == 0
    assert all(not result.is_materialized for result in results)


@pytest.mark.parametrize("top_k", [1, 40])
def test_top_k_eager(benchmark, top_k):
    params = ExperimentParams(data_scale=1, top_k=top_k)
    engine, view = make_engine_and_view(params)
    keywords = params.keywords()
    engine.database.reset_access_counters()
    results = benchmark(
        lambda: engine.search(view, keywords, top_k=top_k, materialize=True)
    )
    assert all(result.is_materialized for result in results)
    assert any(
        engine.database.get(name).store.access_count > 0
        for name in view.document_names
    )
