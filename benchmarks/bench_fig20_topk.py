"""F20 (Figure 20): varying K in top-K (1..40).

The paper's shape: flat — materializing a few more winners is nearly free
because only the top-k results ever touch document storage.
"""

import pytest

from conftest import make_engine_and_view
from repro.workloads.params import ExperimentParams


@pytest.mark.parametrize("top_k", [1, 10, 20, 30, 40])
def test_top_k(benchmark, top_k):
    params = ExperimentParams(data_scale=1, top_k=top_k)
    engine, view = make_engine_and_view(params)
    keywords = params.keywords()
    benchmark(lambda: engine.search(view, keywords, top_k=top_k))
