"""X7 (extension): the cold-path overhaul — batched probes, array sweep,
snapshot restore.

Not a paper figure — this locks down the cold/first-contact side of the
pipeline the way bench_x4/x5 lock down the warm side.  Three regimes:

* **legacy cold**   — the pre-overhaul per-pattern path, frozen verbatim
  in :mod:`repro.core.pdt_legacy`: one B+-tree descent per QPT pattern
  with per-entry object construction, the tuple-stream ``heapq.merge``
  automaton, and the original skeleton finalization;
* **batched cold**  — the shipped path: one planned B+-tree sweep per
  QPT (``PathIndex.lookup_ids_batched``), the CE/PE array sweep over
  packed-key arrays, and the fused single-pass finalization;
* **snapshot-restored** — a *fresh* engine over a *fresh* database of
  identical content, first-contact queries served by deserializing
  skeletons a previous "process" persisted to a
  :class:`repro.core.snapshot.SkeletonStore`.

``test_batched_cold_build_3x_faster_than_legacy`` and
``test_snapshot_restored_first_contact_zero_probes`` are the
self-enforcing acceptance criteria of the cold-path overhaul:

* batched cold ``build_skeleton`` must be **≥ 3x** faster than the
  pre-overhaul path at scale 1 (interleaved minimums via the shared
  ``repro.bench.experiments.measure_cold_path`` protocol, so
  CPU-frequency drift cancels out), and must produce byte-identical
  skeletons;
* snapshot-restored first-contact queries must report skeleton-or-better
  cache hits (``"snapshot"`` — same zero-structural-work depth as a
  skeleton hit) with **zero** path-index probes, and rank exactly like
  a cache-free engine.
"""

from __future__ import annotations

from conftest import make_engine_and_view
from repro.core.engine import KeywordSearchEngine
from repro.core.pdt import annotate_skeleton, build_skeleton
from repro.core.pdt_legacy import legacy_build_skeleton
from repro.core.prepare import prepare_inv_lists
from repro.core.snapshot import SkeletonStore
from repro.workloads.inex import INEXConfig, generate_inex_database
from repro.workloads.params import ExperimentParams
from repro.workloads.views import view_for_params

PARAMS = ExperimentParams(data_scale=1)
SPEEDUP_FLOOR = 3.0
# Keywords disjoint from the snapshotting engine's priming queries, so
# the restored engine's first contact is with a never-seen keyword set.
FRESH_KEYWORDS = ("zeppelin", "quasar")


def _fresh_database():
    """A new database of deterministic, identical content per call —
    the stand-in for "another process loaded the same documents"."""
    return generate_inex_database(
        INEXConfig(
            scale=PARAMS.data_scale,
            element_size=PARAMS.element_size,
            join_selectivity=PARAMS.join_selectivity,
            seed=PARAMS.seed,
        )
    )


def _cold_builds(engine, view, build):
    for doc_name in view.document_names:
        build(view.qpts[doc_name], engine.database.get(doc_name).path_index)


def measure_cold_builds(rounds: int = 60) -> tuple[float, float]:
    """(legacy_ms, batched_ms) for one full cold ``build_skeleton`` pass
    over the bench view's documents.

    Delegates to :func:`repro.bench.experiments.measure_cold_path` —
    the single measurement protocol (interleaved, gc paused, minimum
    statistic) shared with the X7 experiment table and the perf-report
    artifact.
    """
    from repro.bench.experiments import measure_cold_path

    numbers = measure_cold_path(PARAMS, rounds)
    return numbers["legacy_ms"], numbers["batched_ms"]


# -- pytest-benchmark variants (the usual statistics tables) ------------------


def test_cold_build_legacy(benchmark):
    engine, view = make_engine_and_view(PARAMS, enable_cache=False)
    benchmark(lambda: _cold_builds(engine, view, legacy_build_skeleton))


def test_cold_build_batched(benchmark):
    engine, view = make_engine_and_view(PARAMS, enable_cache=False)
    benchmark(lambda: _cold_builds(engine, view, build_skeleton))


def test_snapshot_restore(benchmark, tmp_path):
    # Persist once, then benchmark the load+deserialize+finalize path.
    engine, view = make_engine_and_view(PARAMS, enable_cache=False)
    store = SkeletonStore(tmp_path / "snapshots")
    pairs = []
    for doc_name in view.document_names:
        indexed = engine.database.get(doc_name)
        qpt = view.qpts[doc_name]
        store.save(
            indexed.fingerprint,
            qpt.content_hash,
            build_skeleton(qpt, indexed.path_index),
        )
        pairs.append((indexed.fingerprint, qpt.content_hash))
    benchmark(
        lambda: [store.load(fingerprint, qpt_hash) for fingerprint, qpt_hash in pairs]
    )


# -- self-enforcing acceptance criteria ---------------------------------------


def test_batched_and_legacy_builds_are_equivalent():
    """The speedup cannot hide semantic drift: identical records, ids,
    bounds and annotation output on the bench workload."""
    engine, view = make_engine_and_view(PARAMS, enable_cache=False)
    keywords = PARAMS.keywords() + ("unobtainium",)
    for doc_name in view.document_names:
        indexed = engine.database.get(doc_name)
        qpt = view.qpts[doc_name]
        batched = build_skeleton(qpt, indexed.path_index)
        legacy = legacy_build_skeleton(qpt, indexed.path_index)
        assert batched.ordered == legacy.ordered
        assert batched.parents == legacy.parents
        assert batched.slots == legacy.slots
        assert batched.bounds == legacy.bounds
        assert batched.slot_bounds == legacy.slot_bounds
        assert batched.entry_count == legacy.entry_count
        for key, record in batched.records.items():
            other = legacy.records[key]
            assert (
                record.tag,
                record.value,
                record.byte_length,
                record.wants_value,
                record.wants_content,
            ) == (
                other.tag,
                other.value,
                other.byte_length,
                other.wants_value,
                other.wants_content,
            )
        inv_lists = prepare_inv_lists(indexed.inverted_index, keywords)
        assert (
            annotate_skeleton(batched, inv_lists, keywords).tf_arrays
            == annotate_skeleton(legacy, inv_lists, keywords).tf_arrays
        )


def test_batched_cold_build_3x_faster_than_legacy():
    """Acceptance: batched cold build_skeleton ≥ 3x the pre-PR path.

    Up to three measurement attempts: scheduler noise can only *lower* a
    measured ratio (it inflates whichever side the interruption lands
    on more), so the criterion passes if any attempt clears the floor
    and the failure report carries every attempt.
    """
    attempts = []
    for _ in range(3):
        legacy_ms, batched_ms = measure_cold_builds()
        speedup = legacy_ms / batched_ms
        attempts.append((speedup, legacy_ms, batched_ms))
        if speedup >= SPEEDUP_FLOOR:
            return
    summary = ", ".join(
        f"{s:.2f}x (legacy {lm:.3f} ms / batched {bm:.3f} ms)"
        for s, lm, bm in attempts
    )
    raise AssertionError(
        f"cold build speedup below the {SPEEDUP_FLOOR}x floor in every "
        f"attempt: {summary}"
    )


def test_snapshot_restored_first_contact_zero_probes(tmp_path):
    """Acceptance: a fresh engine over a fresh (identical) database,
    sharing only the snapshot directory, answers its first-contact query
    with skeleton-or-better cache hits and zero path probes — and ranks
    exactly like a cache-free engine."""
    store_dir = tmp_path / "snapshots"

    # "Process 1": build skeletons and persist them.
    first_db = _fresh_database()
    first = KeywordSearchEngine(
        first_db, snapshot_store=SkeletonStore(store_dir)
    )
    first_view = first.define_view("bench", view_for_params(PARAMS))
    warm_hits = first.warm_view(first_view)
    assert set(warm_hits.values()) == {"miss"}  # truly cold, now persisted

    # "Process 2": fresh database of identical content, fresh engine,
    # fresh QPT objects — only the store directory is shared.
    second_db = _fresh_database()
    second = KeywordSearchEngine(
        second_db, snapshot_store=SkeletonStore(store_dir)
    )
    second_view = second.define_view("bench", view_for_params(PARAMS))
    second_db.reset_access_counters()
    outcome = second.search_detailed(
        second_view, FRESH_KEYWORDS, top_k=PARAMS.top_k
    )

    # Skeleton-or-better: snapshot depth == skeleton depth (no probes,
    # no merge pass); pdt/skeleton would mean even warmer.
    assert set(outcome.cache_hits.values()) <= {"pdt", "skeleton", "snapshot"}
    assert "snapshot" in outcome.cache_hits.values()
    path_probes = sum(
        second_db.get(name).path_index.probe_count
        for name in second_view.document_names
    )
    assert path_probes == 0

    # Ranked output is exactly what a cache-free engine computes.
    truth_db = _fresh_database()
    truth = KeywordSearchEngine(truth_db, enable_cache=False)
    truth_view = truth.define_view("bench", view_for_params(PARAMS))
    expected = truth.search_detailed(
        truth_view, FRESH_KEYWORDS, top_k=PARAMS.top_k
    )
    assert [(r.rank, r.score) for r in outcome.results] == [
        (r.rank, r.score) for r in expected.results
    ]

    # A second query is served by the refilled in-memory tiers.
    followup = second.search_detailed(
        second_view, FRESH_KEYWORDS, top_k=PARAMS.top_k
    )
    assert set(followup.cache_hits.values()) == {"pdt"}
